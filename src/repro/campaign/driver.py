"""The hunt driver: sharded differential evaluation → mining → witnesses.

:func:`run_hunt` is the long-running orchestrator behind ``repro hunt``.
One call advances a campaign as far as it can and is always safe to
interrupt and re-invoke:

1. **Shard evaluation** — the suite spec is resolved (deterministically)
   and split into round-robin shards; each incomplete shard's
   (test × model) verdict grid runs through the batch engine with the
   campaign's own result cache, then lands on disk as an atomic shard
   record.  Completed shards are never re-evaluated.
2. **Mining** — the accumulated records are pivoted into a verdict table
   (in suite order, independent of which run produced which shard) and
   every model-pair disagreement becomes a
   :class:`~repro.eval.discrepancy.Discrepancy`.  Tests an
   :class:`~repro.engine.ExecutionPolicy` quarantined (crash, deadline,
   poison test) are excluded from the table, re-derived from the shard
   records into ``quarantine.json``, and listed in the report — skipped
   work is reported, never silently dropped.
3. **Minimization** — each discrepant test is greedily shrunk while the
   pair still disagrees (:mod:`.minimize`), written to
   ``witnesses/*.litmus``, re-parsed, and re-checked through the standard
   matrix path (:func:`repro.eval.litmus_matrix.litmus_matrix`) so every
   reported witness is *known* to still diverge as a ``.litmus`` file.
4. **Report** — the ranked report (smallest witness first) is written as
   ``report.txt`` + ``report.json`` and returned, alongside a telemetry
   run report (``stats.json``, see :mod:`repro.obs`) covering shard
   timing, cache hit rates and engine dispatch for *this* run.

Every stage is a deterministic function of the campaign spec, so a
killed-and-rerun campaign reaches byte-identical final reports (the
wall-clock sections of ``stats.json`` are per-run by design and excluded
from that guarantee).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Optional, Sequence

from typing import Union

from ..engine import (
    CellFailure,
    ExecutionPolicy,
    FaultPlan,
    ModelLike,
    OutcomeSpec,
    VerdictSpec,
    evaluate_cells,
)
from ..eval.discrepancy import (
    Discrepancy,
    OracleDiscrepancy,
    mine_discrepancies,
    mine_oracle_discrepancies,
    render_discrepancies,
    render_oracle_discrepancies,
)
from ..eval.litmus_matrix import litmus_matrix
from ..litmus.frontend.printer import print_litmus
from ..litmus.frontend.parser import LitmusParseError, parse_litmus_file
from ..litmus.frontend.suite import resolve_suite, shard_suite
from ..litmus.test import LitmusTest
from ..obs import RunReport, collecting, incr, monotonic, time_block
from .minimize import (
    divergence_check,
    instruction_count,
    minimize_divergence,
    oracle_divergence_check,
)
from .state import (
    ORACLE_AXIOMATIC,
    ORACLE_OPERATIONAL,
    CampaignDir,
    CampaignError,
    CampaignSpec,
    member_names,
    suite_digest,
)

__all__ = [
    "WitnessRecord",
    "HuntReport",
    "run_hunt",
    "DEFAULT_PAIRS",
    "DEFAULT_ORACLE_PAIRS",
]

DEFAULT_PAIRS: tuple[tuple[str, str], ...] = (("wmm", "arm"),)
"""The pair a fresh campaign hunts when none is given: the paper's
central WMM-vs-ARM positioning claim."""

DEFAULT_ORACLE_PAIRS: tuple[tuple[str, str], ...] = (
    ("gam", "gam"),
    ("gam0", "gam0"),
)
"""The (model, machine) pairs a fresh ``--oracle operational`` campaign
hunts when none is given: the paper's two equivalence theorems."""

_DEFAULT_SHARDS = 4

AnyDiscrepancy = Union[Discrepancy, OracleDiscrepancy]


@dataclass(frozen=True)
class WitnessRecord:
    """One minimized, re-verified witness of a discrepancy.

    Attributes:
        discrepancy: the (test, pair) disagreement this witnesses.
        path: the written ``.litmus`` file.
        relpath: the same file relative to the campaign root (used in the
            report, so reports of identical hunts are byte-identical no
            matter where their campaign directories live).
        original_instrs / minimized_instrs: shrink achieved.
        checks: divergence re-checks the minimizer spent.
    """

    discrepancy: AnyDiscrepancy
    path: str
    relpath: str
    original_instrs: int
    minimized_instrs: int
    checks: int


@dataclass(frozen=True)
class HuntReport:
    """The result of one (possibly resumed) campaign run.

    Attributes:
        spec: the campaign's identity.
        tests_evaluated: suite tests with an asked outcome.
        discrepancies: every mined (test, pair) disagreement.
        witnesses: one record per discrepancy, ranking order.
        text: the rendered report (also written to ``report.txt``).
        quarantined: test name → failure record (reason, message,
            traceback, attempts, shard) for tests the execution policy
            quarantined; empty for fault-free default-policy runs.
    """

    spec: CampaignSpec
    tests_evaluated: int
    discrepancies: tuple[AnyDiscrepancy, ...]
    witnesses: tuple[WitnessRecord, ...]
    text: str
    quarantined: Mapping[str, dict] = field(default_factory=dict)

    @property
    def witness_paths(self) -> tuple[str, ...]:
        """The written ``.litmus`` files, in ranking order."""
        return tuple(record.path for record in self.witnesses)


def _witness_stem(disc: AnyDiscrepancy) -> str:
    """Deterministic file/test name for a discrepancy's witness.

    Constructed member names (``ctor(same_address_loads=arm)``) carry
    characters that are awkward in filenames; runs of them collapse to a
    single ``-``.  Registry-name pairs pass through untouched, keeping
    historical reports byte-identical.
    """
    stem = f"{disc.test_name}__{disc.pair[0]}-vs-{disc.pair[1]}"
    return re.sub(r"[^A-Za-z0-9._+=-]+", "-", stem).strip("-")


def _quarantined_entry(test: LitmusTest, failure: CellFailure) -> dict:
    """The shard-record entry for a batch the policy quarantined.

    Replaces the ``verdicts``/``oracle`` key with the tagged failure
    record, so the quarantine travels inside the crash-safe shard file
    and ``quarantine.json`` can always be re-derived from the shards.
    """
    return {
        "name": test.name,
        "instrs": instruction_count(test),
        "quarantined": {
            "reason": failure.reason,
            "message": failure.message,
            "traceback": failure.traceback,
            "attempts": failure.attempts,
        },
    }


class _Progress:
    """Per-shard heartbeat/stall bookkeeping shared by both shard loops.

    All wall-clock text it emits is gated on ``heartbeat`` (opt-in via
    ``--stats``), so the default log output stays byte-identical run to
    run.  Stall visibility has two halves: :meth:`on_stall` is the
    engine's callback while one batch is *pending* (fires even though
    ``on_batch`` cannot), and :meth:`note_batch` warns after the fact
    when the gap since the previous completed batch exceeded the
    configured deadline.
    """

    def __init__(
        self,
        log: Callable[[str], None],
        heartbeat: bool,
        stall_after: float,
        label: str,
        total: int,
    ) -> None:
        self.log = log
        self.heartbeat = heartbeat
        self.stall_after = stall_after
        self.label = label
        self.total = total
        self.count = 0
        self.started = monotonic()
        self.last_batch = self.started

    def on_stall(self, test: LitmusTest, waited: float) -> None:
        """Engine stall callback: a batch has been pending too long."""
        self.log(
            f"  stall warning: {self.label} test {test.name!r} still "
            f"evaluating after {waited:.1f}s (no batch completed for "
            f"{monotonic() - self.last_batch:.1f}s)"
        )

    def note_batch(self) -> None:
        """Heartbeat after each completed batch, flagging stalled gaps."""
        now = monotonic()
        gap = now - self.last_batch
        self.last_batch = now
        if not self.heartbeat:
            return
        line = (
            f"  heartbeat: {self.label} {self.count}/{self.total} tests "
            f"{now - self.started:.1f}s elapsed, {gap:.1f}s since last batch"
        )
        if self.stall_after > 0 and gap > self.stall_after:
            line += f" (stalled past the {self.stall_after:g}s deadline)"
        self.log(line)


def _evaluate_shards(
    campaign: CampaignDir,
    spec: CampaignSpec,
    tests: Sequence[LitmusTest],
    models: Sequence[str],
    lookup: Mapping[str, ModelLike],
    jobs: int,
    log: Callable[[str], None],
    heartbeat: bool = False,
    policy: Optional[ExecutionPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    stall_after: float = 30.0,
) -> None:
    """Run every incomplete shard's verdict grid and persist its record.

    ``heartbeat`` adds per-batch progress lines with elapsed wall time to
    the log — wall-clock text, so it is off unless stats were requested
    (the default log output stays byte-identical run to run).  Under a
    ``skip``/``quarantine`` policy, batches the engine finalized as
    :class:`~repro.engine.CellFailure` land in the shard record as
    ``quarantined`` entries instead of verdicts.
    """
    for index in range(spec.num_shards):
        if campaign.load_shard(index) is not None:
            incr("campaign.shards.resumed")
            log(f"shard {index + 1}/{spec.num_shards}: already complete")
            continue
        shard_tests = shard_suite(tests, index, spec.num_shards)
        incr("campaign.shards.evaluated")
        incr("campaign.tests.evaluated", len(shard_tests))
        log(
            f"shard {index + 1}/{spec.num_shards}: evaluating "
            f"{len(shard_tests)} tests x {len(models)} models"
        )
        cells = [
            VerdictSpec(test, lookup[model])
            for test in shard_tests
            for model in models
        ]
        progress = _Progress(
            log,
            heartbeat,
            stall_after,
            f"shard {index + 1}/{spec.num_shards}",
            len(shard_tests),
        )

        def on_batch(test: LitmusTest, results: Sequence[object]) -> None:
            progress.count += 1
            first = results[0] if results else None
            if isinstance(first, CellFailure):
                noun = "attempt" if first.attempts == 1 else "attempts"
                log(
                    f"  [{progress.count}/{len(shard_tests)}] {test.name}: "
                    f"QUARANTINED ({first.reason}, {first.attempts} {noun})"
                )
            else:
                log(
                    f"  [{progress.count}/{len(shard_tests)}] {test.name}: "
                    + " ".join(
                        f"{model}={'allow' if allowed else 'forbid'}"
                        for model, allowed in zip(models, results)
                    )
                )
            progress.note_batch()

        with time_block("campaign.shard.seconds"):
            results = evaluate_cells(
                cells,
                jobs=jobs,
                cache_dir=campaign.cache_dir,
                on_batch=on_batch,
                policy=policy,
                fault_plan=fault_plan,
                on_stall=progress.on_stall if heartbeat else None,
                stall_after=stall_after,
            )
            entries = []
            for position, test in enumerate(shard_tests):
                first = results[position * len(models)]
                if isinstance(first, CellFailure):
                    entries.append(_quarantined_entry(test, first))
                    continue
                verdicts = {
                    model: bool(results[position * len(models) + offset])
                    for offset, model in enumerate(models)
                }
                entries.append(
                    {
                        "name": test.name,
                        "instrs": instruction_count(test),
                        "verdicts": verdicts,
                    }
                )
            campaign.write_shard(
                index,
                {
                    "shard": index,
                    "num_shards": spec.num_shards,
                    "tests": entries,
                    "complete": True,
                },
            )


def _evaluate_oracle_shards(
    campaign: CampaignDir,
    spec: CampaignSpec,
    tests: Sequence[LitmusTest],
    concrete_pairs: Sequence[tuple[str, str]],
    lookup: Mapping[str, ModelLike],
    jobs: int,
    log: Callable[[str], None],
    heartbeat: bool = False,
    policy: Optional[ExecutionPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    stall_after: float = 30.0,
) -> None:
    """The operational-oracle analogue of :func:`_evaluate_shards`.

    Each (test, pair) comparison is two full-projection outcome cells —
    the axiomatic model and the machine — and the shard record stores
    the divergence profile (machine-only / axioms-only outcome counts)
    per pair, which is all mining needs; the sets themselves stay in the
    engine cache.
    """
    for index in range(spec.num_shards):
        if campaign.load_shard(index) is not None:
            incr("campaign.shards.resumed")
            log(f"shard {index + 1}/{spec.num_shards}: already complete")
            continue
        shard_tests = shard_suite(tests, index, spec.num_shards)
        incr("campaign.shards.evaluated")
        incr("campaign.tests.evaluated", len(shard_tests))
        log(
            f"shard {index + 1}/{spec.num_shards}: evaluating "
            f"{len(shard_tests)} tests x {len(concrete_pairs)} oracle pairs"
        )
        cells = []
        for test in shard_tests:
            for model_name, oracle_label in concrete_pairs:
                cells.append(
                    OutcomeSpec(test, lookup[model_name], project="full")
                )
                cells.append(
                    OutcomeSpec(
                        test,
                        lookup[model_name],
                        project="full",
                        oracle=oracle_label,
                    )
                )
        progress = _Progress(
            log,
            heartbeat,
            stall_after,
            f"shard {index + 1}/{spec.num_shards}",
            len(shard_tests),
        )

        def on_batch(test: LitmusTest, results: Sequence[object]) -> None:
            progress.count += 1
            first = results[0] if results else None
            if isinstance(first, CellFailure):
                noun = "attempt" if first.attempts == 1 else "attempts"
                log(
                    f"  [{progress.count}/{len(shard_tests)}] {test.name}: "
                    f"QUARANTINED ({first.reason}, {first.attempts} {noun})"
                )
            else:
                log(
                    f"  [{progress.count}/{len(shard_tests)}] {test.name}: "
                    + " ".join(
                        f"{a}~{b}="
                        + (
                            "ok"
                            if results[2 * offset] == results[2 * offset + 1]
                            else "DIFF"
                        )
                        for offset, (a, b) in enumerate(concrete_pairs)
                    )
                )
            progress.note_batch()

        with time_block("campaign.shard.seconds"):
            results = evaluate_cells(
                cells,
                jobs=jobs,
                cache_dir=campaign.cache_dir,
                on_batch=on_batch,
                policy=policy,
                fault_plan=fault_plan,
                on_stall=progress.on_stall if heartbeat else None,
                stall_after=stall_after,
            )
            width = 2 * len(concrete_pairs)
            entries = []
            for position, test in enumerate(shard_tests):
                first = results[position * width]
                if isinstance(first, CellFailure):
                    entries.append(_quarantined_entry(test, first))
                    continue
                divergences = {}
                for offset, pair in enumerate(concrete_pairs):
                    axiomatic = results[position * width + 2 * offset]
                    operational = results[position * width + 2 * offset + 1]
                    divergences["|".join(pair)] = [
                        len(operational - axiomatic),
                        len(axiomatic - operational),
                    ]
                entries.append(
                    {
                        "name": test.name,
                        "instrs": instruction_count(test),
                        "oracle": divergences,
                    }
                )
            campaign.write_shard(
                index,
                {
                    "shard": index,
                    "num_shards": spec.num_shards,
                    "tests": entries,
                    "complete": True,
                },
            )


def _oracle_table(
    campaign: CampaignDir,
    spec: CampaignSpec,
    tests: Sequence[LitmusTest],
) -> dict[str, dict[str, tuple[int, int]]]:
    """Pivot oracle shard records into suite order (see `_verdict_table`)."""
    by_name: dict[str, dict[str, tuple[int, int]]] = {}
    for index in range(spec.num_shards):
        record = campaign.load_shard(index)
        if record is None:  # unreachable after _evaluate_oracle_shards
            raise CampaignError(f"shard {index} is missing its record")
        for entry in record["tests"]:
            if "quarantined" in entry:
                continue
            by_name[entry["name"]] = {
                label: (int(machine_only), int(axiomatic_only))
                for label, (machine_only, axiomatic_only)
                in entry["oracle"].items()
            }
    return {test.name: by_name[test.name] for test in tests if test.name in by_name}


def _verdict_table(
    campaign: CampaignDir,
    spec: CampaignSpec,
    tests: Sequence[LitmusTest],
) -> dict[str, dict[str, bool]]:
    """Pivot the accumulated shard records into suite order.

    Suite order (not shard-completion order) keys the table, so mining is
    independent of *which run* produced each shard.  Quarantined tests
    have no verdicts and are excluded — mining proceeds over the
    surviving cells.
    """
    by_name: dict[str, dict[str, bool]] = {}
    for index in range(spec.num_shards):
        record = campaign.load_shard(index)
        if record is None:  # unreachable after _evaluate_shards
            raise CampaignError(f"shard {index} is missing its record")
        for entry in record["tests"]:
            if "quarantined" in entry:
                continue
            by_name[entry["name"]] = entry["verdicts"]
    return {test.name: by_name[test.name] for test in tests if test.name in by_name}


def _quarantine_records(
    campaign: CampaignDir, spec: CampaignSpec
) -> dict[str, dict]:
    """Derive the quarantine map (test name → failure record) from shards.

    The shard records are the single source of truth: ``quarantine.json``
    is rebuilt from them on every run, which makes it automatically
    crash-safe (a killed run re-derives it) and resume-correct (records
    from previous runs' shards are still there).
    """
    records: dict[str, dict] = {}
    for index in range(spec.num_shards):
        record = campaign.load_shard(index)
        if record is None:  # unreachable after shard evaluation
            raise CampaignError(f"shard {index} is missing its record")
        for entry in record["tests"]:
            info = entry.get("quarantined")
            if info is not None:
                records[entry["name"]] = dict(info, shard=index)
    return records


def _minimize_and_write(
    campaign: CampaignDir,
    discrepancies: Sequence[AnyDiscrepancy],
    tests_by_name: dict[str, LitmusTest],
    lookup: Mapping[str, ModelLike],
    log: Callable[[str], None],
) -> list[WitnessRecord]:
    """Minimize each discrepancy, write its witness, re-verify it."""
    records: list[WitnessRecord] = []
    for disc in discrepancies:
        with time_block("campaign.minimize.seconds"):
            if isinstance(disc, OracleDiscrepancy):
                records.append(
                    _minimize_one_oracle(
                        campaign, disc, tests_by_name, lookup, log
                    )
                )
            else:
                records.append(
                    _minimize_one(campaign, disc, tests_by_name, lookup, log)
                )
    return records


def _minimize_one_oracle(
    campaign: CampaignDir,
    disc: OracleDiscrepancy,
    tests_by_name: dict[str, LitmusTest],
    lookup: Mapping[str, ModelLike],
    log: Callable[[str], None],
) -> WitnessRecord:
    """Minimize one oracle divergence, write its witness, re-verify it."""
    model_name, oracle_label = disc.pair
    check = oracle_divergence_check(
        lookup[model_name], oracle_label, cache_dir=campaign.cache_dir
    )
    result = minimize_divergence(tests_by_name[disc.test_name], check)
    stem = _witness_stem(disc)
    witness = replace(
        result.test,
        name=stem,
        source="hunt minimizer",
        description=(
            f"Minimized {model_name}-axioms vs {oracle_label} "
            f"divergence of {disc.test_name}."
        ),
    )
    path = campaign.witness_dir / f"{stem}.litmus"
    path.write_text(print_litmus(witness), encoding="utf-8")
    # Re-check the *file*: the reported witness must still diverge as
    # .litmus text, not just in memory.
    reparsed = parse_litmus_file(str(path))
    if not oracle_divergence_check(
        lookup[model_name], oracle_label, cache_dir=campaign.cache_dir
    )(reparsed):
        raise CampaignError(
            f"witness {stem!r} lost its divergence in the .litmus round "
            "trip — this is a bug in the minimizer or printer"
        )
    log(
        f"minimized {disc.describe()} — "
        f"{result.original_instrs} -> {result.minimized_instrs} instrs "
        f"({result.checks} checks)"
    )
    incr("campaign.witnesses")
    return WitnessRecord(
        discrepancy=disc,
        path=str(path),
        relpath=str(path.relative_to(campaign.root)),
        original_instrs=result.original_instrs,
        minimized_instrs=result.minimized_instrs,
        checks=result.checks,
    )


def _minimize_one(
    campaign: CampaignDir,
    disc: Discrepancy,
    tests_by_name: dict[str, LitmusTest],
    lookup: Mapping[str, ModelLike],
    log: Callable[[str], None],
) -> WitnessRecord:
    """Minimize one discrepancy, write its witness, re-verify it."""
    # Cheap per-discrepancy closure; the engine cache underneath
    # dedupes the actual verdict work across discrepancies.
    check = divergence_check(
        (lookup[disc.pair[0]], lookup[disc.pair[1]]),
        cache_dir=campaign.cache_dir,
    )
    result = minimize_divergence(tests_by_name[disc.test_name], check)
    stem = _witness_stem(disc)
    witness = replace(
        result.test,
        name=stem,
        source="hunt minimizer",
        description=(
            f"Minimized {disc.pair[0]}/{disc.pair[1]} divergence "
            f"of {disc.test_name}."
        ),
    )
    path = campaign.witness_dir / f"{stem}.litmus"
    path.write_text(print_litmus(witness), encoding="utf-8")
    # Re-check the *file* through the standard matrix path: the
    # reported witness diverges as .litmus text, not just in memory.
    reparsed = parse_litmus_file(str(path))
    cells = litmus_matrix(
        tests=[reparsed],
        model_names=[lookup[name] for name in disc.pair],
        cache_dir=campaign.cache_dir,
    )
    verdicts = {cell.model_name: cell.allowed for cell in cells}
    if verdicts[disc.pair[0]] == verdicts[disc.pair[1]]:
        raise CampaignError(
            f"witness {stem!r} lost its divergence in the .litmus round "
            "trip — this is a bug in the minimizer or printer"
        )
    log(
        f"minimized {disc.describe()} — "
        f"{result.original_instrs} -> {result.minimized_instrs} instrs "
        f"({result.checks} checks)"
    )
    incr("campaign.witnesses")
    return WitnessRecord(
        discrepancy=disc,
        path=str(path),
        relpath=str(path.relative_to(campaign.root)),
        original_instrs=result.original_instrs,
        minimized_instrs=result.minimized_instrs,
        checks=result.checks,
    )


def _render_report(
    spec: CampaignSpec,
    tests_evaluated: int,
    discrepancies: Sequence[AnyDiscrepancy],
    witnesses: Sequence[WitnessRecord],
    quarantined: Optional[Mapping[str, dict]] = None,
) -> str:
    """The human-readable hunt report, smallest witness first."""
    pairs = " ".join(":".join(pair) for pair in spec.pairs)
    oracle_note = (
        "" if spec.oracle == ORACLE_AXIOMATIC else f"oracle {spec.oracle}, "
    )
    header = (
        f"Hunt report — {oracle_note}suite {spec.suite!r}, pairs {pairs}, "
        f"{spec.num_shards} shards, {tests_evaluated} tests"
    )
    sizes = {
        (record.discrepancy.test_name, record.discrepancy.pair):
            record.minimized_instrs
        for record in witnesses
    }
    render = (
        render_oracle_discrepancies
        if spec.oracle == ORACLE_OPERATIONAL
        else render_discrepancies
    )
    table = render(
        discrepancies, sizes=sizes, title="Discrepancies (ranked by witness size)"
    )
    lines = [header, "", table]
    if witnesses:
        lines.append("")
        lines.append("witnesses (minimized, re-verified .litmus):")
        for record in sorted(
            witnesses, key=lambda r: (r.minimized_instrs, r.relpath)
        ):
            lines.append(
                f"  {record.relpath}  "
                f"{record.original_instrs} -> {record.minimized_instrs} instrs"
            )
    # Rendered only when non-empty, and without wall-clock text or
    # tracebacks, so fault-free reports stay byte-identical to the
    # pre-policy format and resumed reports stay byte-stable.
    if quarantined:
        lines.append("")
        lines.append(
            f"quarantined: {len(quarantined)} test(s) excluded from mining "
            "(see quarantine.json):"
        )
        for name in sorted(quarantined):
            info = quarantined[name]
            attempts = int(info.get("attempts", 1))
            noun = "attempt" if attempts == 1 else "attempts"
            lines.append(
                f"  {name}: {info.get('reason', 'error')} "
                f"after {attempts} {noun}"
            )
    return "\n".join(lines) + "\n"


def _witness_json(record: WitnessRecord) -> dict:
    """One witness's ``report.json`` entry (shape follows the oracle)."""
    disc = record.discrepancy
    entry = {
        "test": disc.test_name,
        "pair": list(disc.pair),
        "witness": record.relpath,
        "original_instrs": record.original_instrs,
        "minimized_instrs": record.minimized_instrs,
    }
    if isinstance(disc, OracleDiscrepancy):
        entry["machine_only"] = disc.machine_only
        entry["axiomatic_only"] = disc.axiomatic_only
    else:
        entry["verdicts"] = {
            disc.pair[0]: disc.allowed_a,
            disc.pair[1]: disc.allowed_b,
        }
    return entry


def run_hunt(
    out: str,
    suite: Optional[str] = None,
    pairs: Optional[Sequence[tuple[str, str]]] = None,
    num_shards: Optional[int] = None,
    jobs: int = 1,
    resume: bool = False,
    lint: bool = True,
    log: Optional[Callable[[str], None]] = None,
    heartbeat: bool = False,
    oracle: Optional[str] = None,
    policy: Optional[ExecutionPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    stall_after: float = 30.0,
) -> HuntReport:
    """Run (or resume) a differential hunt campaign in ``out``.

    Args:
        out: the campaign directory (created if missing).  An existing
            campaign resumes automatically when the requested spec matches
            the stored one, and is refused otherwise.
        suite: any ``--suite`` spec (``gen:...``, ``rand:...``, static
            names, ``.litmus`` paths).  Optional when resuming: the
            stored spec supplies it.
        pairs: the pair specs to differentiate.  Under the default
            (axiomatic) oracle these are ``(weaker, stronger)``
            model-*spec* pairs; each side is anything
            :func:`repro.models.spec.resolve_models` accepts, so
            ``("space:same_address_loads=*", "gam")`` hunts a whole
            constructed family against a baseline, defaulting to
            :data:`DEFAULT_PAIRS` for a fresh campaign.  Under the
            operational oracle these are ``(model spec, machine)`` pairs
            defaulting to :data:`DEFAULT_ORACLE_PAIRS`.
        num_shards: deterministic suite chunks (default 4 when fresh).
        jobs: worker processes per shard's engine run.
        resume: require existing state (a guard against typo'd ``--out``
            silently starting a fresh hunt).
        lint: run the lint pre-flight (:func:`repro.lint.preflight_tests`
            / :func:`repro.lint.preflight_models`) over the resolved
            suite and the expanded member models before any campaign
            state is written; error-level findings abort with
            :class:`CampaignError`.  ``repro hunt --no-lint`` disables it.
        log: progress sink (e.g. ``print``); ``None`` is silent.
        heartbeat: emit per-batch heartbeat lines with elapsed wall time
            (``repro hunt --stats`` turns this on; the default log output
            carries no wall-clock text and stays byte-identical).
        oracle: ``"axiomatic"`` (model-vs-model verdict hunting, the
            default) or ``"operational"`` (axiomatic-vs-machine
            outcome-set hunting over *all* suite tests, asked or not).
            Optional when resuming: the stored spec supplies it.
        policy: the :class:`~repro.engine.ExecutionPolicy` for shard
            evaluation (``--timeout/--retries/--on-error``).  Under
            ``skip``/``quarantine`` a failing, hanging or crashing test
            no longer aborts the hunt: its batch becomes a ``quarantined``
            shard entry, mining proceeds over the surviving cells, and
            the failure records are persisted to ``quarantine.json``.
            Like ``jobs``, the policy is *not* part of the campaign's
            identity — a campaign may be resumed under a different one.
        fault_plan: a :class:`~repro.engine.FaultPlan` for the
            deterministic fault-injection harness (chaos tests;
            defaults to the ``REPRO_FAULTS`` environment variable).
        stall_after: seconds without batch progress before stall
            warnings fire (heartbeat runs only).

    Returns:
        the :class:`HuntReport`; identical for identical specs no matter
        how many interrupted runs it took to get there.  Every run also
        persists a telemetry report as ``stats.json`` in the campaign
        directory (see :mod:`repro.obs`), collected into the caller's
        recorder when one is already active (``--stats``) or a private
        one otherwise.
    """
    log = log or (lambda message: None)
    if oracle is not None and oracle not in (
        ORACLE_AXIOMATIC,
        ORACLE_OPERATIONAL,
    ):
        raise CampaignError(
            f"unknown oracle {oracle!r}; expected "
            f"{ORACLE_AXIOMATIC!r} or {ORACLE_OPERATIONAL!r}"
        )
    campaign = CampaignDir(out)
    stored = campaign.load_spec()
    if stored is None:
        if resume:
            raise CampaignError(f"nothing to resume: {out} has no campaign.json")
        if suite is None:
            raise CampaignError("a new campaign needs a --suite spec")
        if num_shards is not None and num_shards < 1:
            raise CampaignError(f"--shards must be >= 1, got {num_shards}")
        suite_spec = suite
        mode = oracle if oracle is not None else ORACLE_AXIOMATIC
        default_pairs = (
            DEFAULT_ORACLE_PAIRS if mode == ORACLE_OPERATIONAL else DEFAULT_PAIRS
        )
        requested_pairs = tuple(pairs) if pairs else default_pairs
        shards = num_shards if num_shards is not None else _DEFAULT_SHARDS
    else:
        suite_spec = suite if suite is not None else stored.suite
        mode = oracle if oracle is not None else stored.oracle
        requested_pairs = tuple(pairs) if pairs else stored.pairs
        shards = num_shards if num_shards is not None else stored.num_shards

    # Resolve (and thereby validate) the suite *before* any state is
    # written: a typo'd spec must not poison the campaign directory, and
    # the resolved content digest is part of the campaign's identity.
    # Spec-shaped mistakes become CampaignError (a usage error at the
    # CLI); parse errors and unknown names keep their own types.
    try:
        resolved = resolve_suite(suite_spec)
    except LitmusParseError:
        raise  # reported with its file/line context
    except ValueError as exc:
        raise CampaignError(str(exc)) from exc
    # The verdict oracle needs an asked outcome per test; the operational
    # oracle compares whole outcome sets, so asked-less tests (randprog
    # corpora) stay in.
    if mode == ORACLE_OPERATIONAL:
        tests = list(resolved)
    else:
        tests = [test for test in resolved if test.asked is not None]
    spec = CampaignSpec(
        suite=suite_spec,
        pairs=requested_pairs,
        num_shards=shards,
        suite_digest=suite_digest(tests),
        oracle=mode,
    )
    # Expand pair specs (space:/file families fan out to concrete member
    # pairs) before any state is written: a bad model spec must not poison
    # the campaign directory either, and the expansion's content digests
    # are part of the campaign's identity via spec.to_json().
    concrete_pairs, lookup = spec.expansion()
    model_names = tuple(
        name for name in member_names(concrete_pairs) if name in lookup
    )
    # Lint pre-flight: refuse tests/models the linter rejects *before*
    # any campaign state is written, so a bad input cannot poison the
    # campaign directory.  Warnings pass; only error findings veto.
    if lint:
        from ..lint import preflight_models, preflight_tests
        from ..models.spec import resolve_model

        findings = preflight_tests(tests)
        findings.extend(
            preflight_models(
                [
                    resolve_model(lookup[name])
                    if isinstance(lookup[name], str)
                    else lookup[name]
                    for name in model_names
                ]
            )
        )
        if findings:
            listing = "\n".join(
                "  " + finding.render() for finding in findings
            )
            raise CampaignError(
                f"lint pre-flight found {len(findings)} error(s) "
                f"(rerun with --no-lint to override):\n{listing}"
            )
    if len(concrete_pairs) != len(spec.pairs):
        log(
            f"expanded {len(spec.pairs)} pair spec(s) into "
            f"{len(concrete_pairs)} concrete pairs over "
            f"{len(model_names)} models"
        )
    if stored is None:
        campaign.write_spec(spec)
        log(f"new campaign at {out}: {spec.suite!r}, shards={spec.num_shards}")
    else:
        campaign.check_spec(spec)  # raises on any mismatch, incl. content
        done = len(campaign.completed_shards(spec.num_shards))
        log(
            f"resuming campaign at {out}: "
            f"{done}/{spec.num_shards} shards complete"
        )

    # Telemetry: reuse the CLI's recorder when --stats already installed
    # one (so the printed report covers the whole hunt), else collect
    # privately — stats.json is written either way.
    with collecting(reuse=True) as recorder:
        if spec.oracle == ORACLE_OPERATIONAL:
            _evaluate_oracle_shards(
                campaign,
                spec,
                tests,
                concrete_pairs,
                lookup,
                jobs,
                log,
                heartbeat,
                policy,
                fault_plan,
                stall_after,
            )
        else:
            _evaluate_shards(
                campaign,
                spec,
                tests,
                model_names,
                lookup,
                jobs,
                log,
                heartbeat,
                policy,
                fault_plan,
                stall_after,
            )

        # Quarantine records are derived from the shard files (the crash
        # safety comes from re-deriving, not from keeping the two in
        # sync) and persisted before mining, so even a run that dies
        # mid-minimization reports what it skipped.
        quarantined = _quarantine_records(campaign, spec)
        campaign.write_quarantine(quarantined)
        if quarantined:
            log(
                f"quarantined {len(quarantined)} test(s); "
                "records in quarantine.json"
            )

        with time_block("campaign.mine.seconds"):
            if spec.oracle == ORACLE_OPERATIONAL:
                oracle_table = _oracle_table(campaign, spec, tests)
                discrepancies: Sequence[AnyDiscrepancy] = (
                    mine_oracle_discrepancies(oracle_table, concrete_pairs)
                )
            else:
                table = _verdict_table(campaign, spec, tests)
                discrepancies = mine_discrepancies(table, concrete_pairs)
        incr("campaign.discrepancies", len(discrepancies))
        log(f"mined {len(discrepancies)} discrepancies over {len(tests)} tests")

        tests_by_name = {test.name: test for test in tests}
        witnesses = _minimize_and_write(
            campaign, discrepancies, tests_by_name, lookup, log
        )

        text = _render_report(spec, len(tests), discrepancies, witnesses, quarantined)
        report_data = {
            "campaign": spec.to_json(),
            "tests_evaluated": len(tests),
            "discrepancies": [
                _witness_json(record) for record in witnesses
            ],
        }
        if quarantined:
            # Key present only when non-empty: fault-free reports keep
            # the historical payload byte-for-byte.
            report_data["quarantined"] = {
                name: {
                    "reason": info.get("reason", "error"),
                    "attempts": int(info.get("attempts", 1)),
                    "shard": int(info.get("shard", 0)),
                }
                for name, info in sorted(quarantined.items())
            }
        campaign.write_report(text, report_data)
        meta = {
            "suite": spec.suite,
            "shards": spec.num_shards,
            "pairs": [":".join(pair) for pair in spec.pairs],
            "jobs": jobs,
        }
        if spec.oracle != ORACLE_AXIOMATIC:
            meta["oracle"] = spec.oracle
        if policy is not None:
            meta["policy"] = {
                "timeout": policy.timeout,
                "retries": policy.retries,
                "on_error": policy.on_error,
            }
        stats = RunReport.from_snapshot(
            recorder.snapshot(), command="hunt", meta=meta
        )
        campaign.write_stats(stats.to_json())
    return HuntReport(
        spec=spec,
        tests_evaluated=len(tests),
        discrepancies=tuple(discrepancies),
        witnesses=tuple(witnesses),
        text=text,
        quarantined=quarantined,
    )
