"""Execution policies: deadlines, retries and failure modes for the engine.

The scheduler's historical contract — any worker failure aborts the whole
``evaluate_cells`` call — is the right default for correctness harnesses
(a verdict matrix with a hole is not the paper's matrix), but it is fatal
for long-running campaigns: one poison test, one pathological DP blowup
or one OOM-killed worker should not throw away hours of hunt progress.
:class:`ExecutionPolicy` makes the failure semantics a caller choice:

* ``on_error="fail"`` (the default) — today's behaviour: the first batch
  failure raises (:class:`~repro.engine.scheduler.EngineWorkerError`, or
  :class:`~repro.core.axiomatic.DomainOverflowError` for overflow), after
  the retry budget is spent.
* ``on_error="skip"`` — failed batches resolve to :class:`CellFailure`
  sentinels in the result list; surviving cells are unaffected.
* ``on_error="quarantine"`` — like ``skip``, but the failure is counted
  as ``engine.batches.quarantined`` and campaign drivers persist the
  record to ``quarantine.json`` so skipped work is reported, never
  silently dropped.

``timeout`` is a per-batch deadline in seconds.  Deadlines need a
killable executor, so setting one routes even ``jobs=1`` runs through a
one-worker process pool (the in-process path cannot interrupt a hung
DP).  ``retries`` re-submits a failed or timed-out batch up to N more
times with exponential backoff (``backoff * 2**(attempt-2)`` seconds
before attempt 2, 3, ...), which rides out transient failures (an
OOM-killed worker, a flaky filesystem) without giving up on the batch.

Policies are small frozen dataclasses, picklable by construction, so
they can ride inside campaign metadata and cross process boundaries.
Everything here is validated eagerly: a typo'd mode fails at
construction, not mid-campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "ON_ERROR_FAIL",
    "ON_ERROR_SKIP",
    "ON_ERROR_QUARANTINE",
    "ON_ERROR_MODES",
    "FAILURE_REASONS",
    "ExecutionPolicy",
    "DEFAULT_POLICY",
    "CellFailure",
]

ON_ERROR_FAIL = "fail"
"""Raise on the first failed batch once retries are spent (the default)."""

ON_ERROR_SKIP = "skip"
"""Resolve failed batches to :class:`CellFailure` sentinels and continue."""

ON_ERROR_QUARANTINE = "quarantine"
"""Like ``skip``, but counted and persisted as quarantine records."""

ON_ERROR_MODES: dict[str, str] = {
    ON_ERROR_FAIL: (
        "raise on the first failed batch once the retry budget is spent "
        "(`EngineWorkerError`, or `DomainOverflowError` for overflow) — "
        "the historical behaviour and the default"
    ),
    ON_ERROR_SKIP: (
        "resolve every cell of a failed batch to a `CellFailure` sentinel "
        "and keep evaluating; callers render the holes"
    ),
    ON_ERROR_QUARANTINE: (
        "like `skip`, but the batch is counted as "
        "`engine.batches.quarantined` and campaign drivers persist the "
        "failure record (reason, message, traceback, attempt count) to "
        "`quarantine.json`"
    ),
}
"""The ``on_error`` vocabulary, rendered into ``docs/robustness.md``."""

FAILURE_REASONS: dict[str, str] = {
    "error": "an exception escaped the batch (worker-side or in-process)",
    "timeout": "the batch exceeded the per-batch deadline and its pool was killed",
    "crash": "the worker process died mid-batch (SIGKILL, OOM, segfault)",
    "domain-overflow": (
        "the test's value domain overflowed the enumerator "
        "(deterministic, never retried)"
    ),
}
"""Tagged reasons a :class:`CellFailure` (or quarantine record) can carry."""


@dataclass(frozen=True)
class ExecutionPolicy:
    """How the scheduler treats slow, failing and crashing batches.

    Attributes:
        timeout: per-batch deadline in seconds (``None`` disables; a
            deadline routes execution through a killable process pool
            even at ``jobs=1``).
        retries: how many times a failed or timed-out batch is
            re-submitted before its failure is finalized (total attempts
            = ``retries + 1``).  Domain overflows are deterministic and
            never retried.
        backoff: base of the exponential sleep between attempts, in
            seconds (attempt ``k`` waits ``backoff * 2**(k-2)``); ``0``
            retries immediately (deterministic tests).
        on_error: one of :data:`ON_ERROR_MODES` — raise, skip, or
            quarantine.
    """

    timeout: Optional[float] = None
    retries: int = 0
    backoff: float = 0.1
    on_error: str = ON_ERROR_FAIL

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"unknown on_error mode {self.on_error!r}; expected one of "
                f"{', '.join(sorted(ON_ERROR_MODES))}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0 seconds, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0 seconds, got {self.backoff}")

    @property
    def needs_pool(self) -> bool:
        """True when this policy requires a killable (pooled) executor."""
        return self.timeout is not None

    @property
    def raises(self) -> bool:
        """True when finalized failures raise instead of yielding sentinels."""
        return self.on_error == ON_ERROR_FAIL


DEFAULT_POLICY = ExecutionPolicy()
"""The no-deadline, no-retry, raise-on-error policy (seed behaviour)."""


@dataclass(frozen=True)
class CellFailure:
    """The sentinel a failed cell resolves to under ``skip``/``quarantine``.

    One instance stands in for every cell of the failed batch (batches
    are the failure domain: a crash or deadline kill loses the whole
    per-test batch).  Callers distinguish results from failures with
    ``isinstance(result, CellFailure)``.

    Attributes:
        test_name: the batch's litmus test.
        reason: a :data:`FAILURE_REASONS` tag (``error`` / ``timeout`` /
            ``crash`` / ``domain-overflow``).
        message: one-line human-readable failure description.
        traceback: worker-side formatted traceback when one was captured
            (empty for timeouts, crashes and in-process failures, whose
            context lives on ``__cause__`` chains or nowhere at all).
        attempts: how many times the batch was attempted in total.
    """

    test_name: str
    reason: str
    message: str
    traceback: str = ""
    attempts: int = 1

    def describe(self) -> str:
        """One-line summary used by logs and reports."""
        noun = "attempt" if self.attempts == 1 else "attempts"
        return (
            f"{self.test_name}: {self.reason} after "
            f"{self.attempts} {noun} — {self.message}"
        )
