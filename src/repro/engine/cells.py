"""Evaluation cells: the unit of work the batch engine schedules.

A *cell* is one entry of a test × model (or test × definition-pair) grid:

* :class:`VerdictSpec` — "does ``model`` allow ``test``'s asked outcome?"
  (the litmus verdict matrix);
* :class:`OutcomeSpec` — the full projected outcome set (the strength
  lattice);
* :class:`EquivSpec` — axiomatic vs operational outcome sets for one
  definition pair (the equivalence checker).

Cells are small frozen dataclasses carrying the :class:`LitmusTest`
itself and a :data:`ModelLike` — either a model *spec string* (a registry
name, a ``.model`` file/directory path, a ``ctor:`` construction point;
anything :func:`repro.models.spec.resolve_model` accepts) or a built
:class:`~repro.core.axiomatic.MemoryModel`.  Both forms are picklable,
so cells cross process boundaries untouched and worker processes
re-resolve spec strings against their own filesystem/registry view.

Every cell exposes a *descriptor* — a canonical JSON-able structure
hashed into the on-disk cache key.  Descriptors hash content, not names:
two structurally identical tests share cache entries, and a model is
keyed by its clause names, load-value axiom and coherence requirement
(clause names fully determine clause behaviour in this repository's
vocabulary).  A ``.model``-file cell therefore re-reads the file per
descriptor: editing the file's content changes the cache key, while
renaming the model inside it does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..core.axiomatic import (
    CandidatePrefix,
    MemoryModel,
    enumerate_outcomes,
    is_allowed,
)
from ..litmus.test import LitmusTest
from ..models.spec import resolve_model
from ..obs import current as _obs_current

__all__ = [
    "ENGINE_VERSION",
    "ModelLike",
    "VerdictSpec",
    "OutcomeSpec",
    "EquivSpec",
    "CellSpec",
    "CellResult",
    "cell_descriptor",
    "test_descriptor",
    "model_descriptor",
    "model_display_name",
    "evaluate_cell",
]

ENGINE_VERSION = 3
"""Bumped whenever engine/axiomatic semantics change, invalidating caches.

Version history:

* 1 — the PR-1 batch engine over the exact order enumerator.
* 2 — the frontier-kernel fast path (:mod:`repro.core.kernel`): verdicts
  and outcome sets for models without dynamic clauses or coherence side
  conditions are answered by the bitmask DP.  Results are parity-tested
  identical, but the enumeration core changed, so pre-kernel cache entries
  must miss rather than vouch for the new code path.
* 3 — the telemetry subsystem (:mod:`repro.obs`) threaded through cell
  evaluation, dispatch, the kernel and the cache.  Results are unchanged,
  but the evaluation internals changed and the R004 invariant ties every
  engine-path diff to a bump, so older entries re-verify rather than vouch
  for the instrumented code paths.
"""

ModelLike = Union[str, MemoryModel]
"""A model spec string (resolved via ``resolve_model``) or a built model."""


def model_display_name(model: ModelLike) -> str:
    """The name a cell reports for its model.

    Spec strings display as themselves (``"gam"``, a file path, a
    ``ctor:`` spec); built models display their ``name``.
    """
    return model if isinstance(model, str) else model.name


def _resolve(model: ModelLike) -> MemoryModel:
    if isinstance(model, MemoryModel):
        return model
    return resolve_model(model)


@dataclass(frozen=True)
class VerdictSpec:
    """One (test, model) verdict cell: is the asked outcome allowed?"""

    test: LitmusTest
    model: ModelLike

    @property
    def model_name(self) -> str:
        """Display name of the cell's model (see :func:`model_display_name`)."""
        return model_display_name(self.model)


@dataclass(frozen=True)
class OutcomeSpec:
    """One (test, model) outcome-set cell under a projection."""

    test: LitmusTest
    model: ModelLike
    project: str = "full"

    @property
    def model_name(self) -> str:
        """Display name of the cell's model (see :func:`model_display_name`)."""
        return model_display_name(self.model)


@dataclass(frozen=True)
class EquivSpec:
    """One (test, definition-pair) cell: (axiomatic, operational) sets.

    Pair names are the keys of
    :func:`repro.equivalence.checker.default_pairs`; each names both an
    axiomatic model and the operational definition it is compared against.
    """

    test: LitmusTest
    pair_name: str


CellSpec = Union[VerdictSpec, OutcomeSpec, EquivSpec]

CellResult = Union[bool, frozenset, tuple]
"""``bool`` for verdicts, ``frozenset[Outcome]`` for outcome sets, and an
``(axiomatic, operational)`` pair of outcome sets for equivalence cells."""


def test_descriptor(test: LitmusTest) -> dict:
    """Canonical content descriptor of a litmus test (name-independent)."""
    asked = None
    if test.asked is not None:
        asked = {
            "regs": sorted([proc, reg, value] for proc, reg, value in test.asked.regs),
            "mem": sorted([addr, value] for addr, value in test.asked.mem),
        }
    return {
        "programs": [
            [repr(instr) for instr in program] for program in test.programs
        ],
        "locations": sorted(test.locations.items()),
        "initial_memory": sorted(test.initial_memory.items()),
        "asked": asked,
        "observed": sorted([proc, reg] for proc, reg in test.observed),
    }


def model_descriptor(model: ModelLike) -> dict:
    """Canonical content descriptor of a model (name-independent).

    Spec strings are resolved first, so a ``.model`` file's descriptor
    tracks the file's *current* content — the property the result cache
    and campaign digests key on.
    """
    resolved = _resolve(model)
    return {
        "clauses": [c.name for c in resolved.clauses],
        "dynamic_clauses": [c.name for c in resolved.dynamic_clauses],
        "load_value": resolved.load_value,
        "requires_coherence": resolved.requires_coherence,
    }


def cell_descriptor(cell: CellSpec) -> dict:
    """The canonical descriptor hashed into a cell's cache key."""
    if isinstance(cell, VerdictSpec):
        return {
            "engine_version": ENGINE_VERSION,
            "kind": "verdict",
            "test": test_descriptor(cell.test),
            "model": model_descriptor(cell.model),
        }
    if isinstance(cell, OutcomeSpec):
        return {
            "engine_version": ENGINE_VERSION,
            "kind": "outcomes",
            "test": test_descriptor(cell.test),
            "model": model_descriptor(cell.model),
            "project": cell.project,
        }
    if isinstance(cell, EquivSpec):
        return {
            "engine_version": ENGINE_VERSION,
            "kind": "equiv",
            "test": test_descriptor(cell.test),
            "pair": cell.pair_name,
            "model": model_descriptor(cell.pair_name),
        }
    raise TypeError(f"unknown cell spec {cell!r}")


def evaluate_cell(cell: CellSpec, prefix: Optional[CandidatePrefix]) -> CellResult:
    """Evaluate one cell against a shared candidate prefix.

    ``prefix`` must have been built for ``cell.test`` (or be ``None`` to
    rebuild per call); sharing it across all cells of one test is the
    engine's central amortization.  Engine dispatch happens underneath:
    :func:`~repro.core.axiomatic.is_allowed` and
    :func:`~repro.core.axiomatic.enumerate_outcomes` route each model to
    the frontier kernel when it is exact for it and to the order
    enumerator otherwise, and the kernel's solved DPs live on the shared
    prefix alongside the memoized order streams.
    """
    recorder = _obs_current()
    if recorder.active:
        recorder.incr("engine.cells.evaluated")
        if isinstance(cell, VerdictSpec):
            recorder.incr("engine.cells.verdict")
        elif isinstance(cell, OutcomeSpec):
            recorder.incr("engine.cells.outcomes")
        elif isinstance(cell, EquivSpec):
            recorder.incr("engine.cells.equiv")
    if isinstance(cell, VerdictSpec):
        return is_allowed(cell.test, _resolve(cell.model), prefix=prefix)
    if isinstance(cell, OutcomeSpec):
        return enumerate_outcomes(
            cell.test, _resolve(cell.model), project=cell.project, prefix=prefix
        )
    if isinstance(cell, EquivSpec):
        from ..equivalence.checker import default_pairs  # cycle-free import

        axiomatic = enumerate_outcomes(
            cell.test, resolve_model(cell.pair_name), project="full", prefix=prefix
        )
        operational = default_pairs()[cell.pair_name][1](cell.test)
        return axiomatic, operational
    raise TypeError(f"unknown cell spec {cell!r}")
