"""Evaluation cells: the unit of work the batch engine schedules.

A *cell* is one entry of a test × model grid evaluated under an *oracle*:

* :class:`VerdictSpec` — "does the oracle allow ``test``'s asked outcome?"
  (the litmus verdict matrix);
* :class:`OutcomeSpec` — the oracle's full projected outcome set (the
  strength lattice, the equivalence checker).

The oracle selects *which definition* answers the cell:

* ``"axiomatic"`` (the default) resolves the cell's :data:`ModelLike` and
  runs the axiomatic enumeration (order enumerator or frontier kernel);
* ``"operational:<machine>"`` exhaustively explores one of the abstract
  machines named by :func:`operational_machines` — the Figure 17 GAM
  machine, its GAM0 variant, or the SC/TSO reference machines.  The
  ``model`` field is carried for display only; the machine alone
  determines the result (and the cache key).

Cells are small frozen dataclasses carrying the :class:`LitmusTest`
itself and a :data:`ModelLike` — either a model *spec string* (a registry
name, a ``.model`` file/directory path, a ``ctor:`` construction point;
anything :func:`repro.models.spec.resolve_model` accepts) or a built
:class:`~repro.core.axiomatic.MemoryModel`.  All forms are picklable,
so cells cross process boundaries untouched and worker processes
re-resolve spec strings against their own filesystem/registry view.

Every cell exposes a *descriptor* — a canonical JSON-able structure
hashed into the on-disk cache key.  Descriptors hash content, not names:
two structurally identical tests share cache entries, an axiomatic cell
is keyed by its model's clause names, load-value axiom and coherence
requirement, and an operational cell is keyed by the machine's variant
policy (clause names and variant policies fully determine behaviour in
this repository's vocabulary).  A ``.model``-file cell therefore
re-reads the file per descriptor: editing the file's content changes the
cache key, while renaming the model inside it does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..core.axiomatic import (
    CandidatePrefix,
    MemoryModel,
    enumerate_outcomes,
    is_allowed,
)
from ..core.operational import (
    GAM0_MACHINE,
    GAM_MACHINE,
    operational_outcomes,
)
from ..core.reference_machines import sc_outcomes, tso_outcomes
from ..litmus.test import LitmusTest, Outcome
from ..models.spec import resolve_model
from ..obs import current as _obs_current

__all__ = [
    "ENGINE_VERSION",
    "ORACLE_AXIOMATIC",
    "ModelLike",
    "VerdictSpec",
    "OutcomeSpec",
    "CellSpec",
    "CellResult",
    "cell_descriptor",
    "test_descriptor",
    "model_descriptor",
    "model_display_name",
    "oracle_descriptor",
    "operational_machines",
    "parse_oracle",
    "evaluate_cell",
]

ENGINE_VERSION = 6
"""Bumped whenever engine/axiomatic semantics change, invalidating caches.

Version history:

* 1 — the PR-1 batch engine over the exact order enumerator.
* 2 — the frontier-kernel fast path (:mod:`repro.core.kernel`): verdicts
  and outcome sets for models without dynamic clauses or coherence side
  conditions are answered by the bitmask DP.  Results are parity-tested
  identical, but the enumeration core changed, so pre-kernel cache entries
  must miss rather than vouch for the new code path.
* 3 — the telemetry subsystem (:mod:`repro.obs`) threaded through cell
  evaluation, dispatch, the kernel and the cache.  Results are unchanged,
  but the evaluation internals changed and the R004 invariant ties every
  engine-path diff to a bump, so older entries re-verify rather than vouch
  for the instrumented code paths.
* 4 — the oracle abstraction: every cell carries an ``oracle`` field, the
  abstract machines became engine backends, descriptors gained an
  ``oracle`` key (operational cells key on the machine variant, not the
  model) and the bespoke ``EquivSpec`` kind was retired in favour of
  outcome cells under both oracles.  Axiomatic results are unchanged, but
  the descriptor shape changed, so version-3 entries must miss.
* 5 — the fault-tolerance layer: the scheduler moved onto
  ``ProcessPoolExecutor`` with execution policies (deadlines, retries,
  quarantine) and deterministic fault injection.  Results are unchanged,
  but the dispatch internals changed and the R004 invariant ties every
  engine-path diff to a bump, so older entries re-verify rather than
  vouch for the reworked scheduler.
* 6 — verdict-as-a-service: the serve daemon shares one cache directory
  across many writer processes, ``ResultCache`` grew export/import
  tarballs and a crash-orphan-safe concurrent store path, and the wire
  codec reuses the cache's canonical outcome JSON.  Results are
  unchanged, but the cache payload helpers moved and the R004 invariant
  ties every engine-path diff to a bump, so pre-serve entries re-verify
  rather than vouch for the shared-store code paths.
"""

ModelLike = Union[str, MemoryModel]
"""A model spec string (resolved via ``resolve_model``) or a built model."""

ORACLE_AXIOMATIC = "axiomatic"
"""The default oracle: axiomatic enumeration of the cell's model."""


def model_display_name(model: ModelLike) -> str:
    """The name a cell reports for its model.

    Spec strings display as themselves (``"gam"``, a file path, a
    ``ctor:`` spec); built models display their ``name``.
    """
    return model if isinstance(model, str) else model.name


def _resolve(model: ModelLike) -> MemoryModel:
    if isinstance(model, MemoryModel):
        return model
    return resolve_model(model)


MachineFn = Callable[[LitmusTest, str], "frozenset[Outcome]"]


def _gam_outcomes(test: LitmusTest, project: str) -> frozenset[Outcome]:
    return operational_outcomes(test, GAM_MACHINE, project=project)


def _gam0_outcomes(test: LitmusTest, project: str) -> frozenset[Outcome]:
    return operational_outcomes(test, GAM0_MACHINE, project=project)


def _sc_outcomes(test: LitmusTest, project: str) -> frozenset[Outcome]:
    return sc_outcomes(test, project=project)


def _tso_outcomes(test: LitmusTest, project: str) -> frozenset[Outcome]:
    return tso_outcomes(test, project=project)


_MACHINES: dict[str, tuple[MachineFn, dict]] = {
    "gam": (
        _gam_outcomes,
        {"kind": "gam-machine", "same_address_loads": GAM_MACHINE.same_address_loads},
    ),
    "gam0": (
        _gam0_outcomes,
        {"kind": "gam-machine", "same_address_loads": GAM0_MACHINE.same_address_loads},
    ),
    "sc": (
        _sc_outcomes,
        {"kind": "sc-machine"},
    ),
    "tso": (
        _tso_outcomes,
        {"kind": "tso-machine"},
    ),
}


def operational_machines() -> tuple[str, ...]:
    """Sorted names accepted in ``operational:<machine>`` oracle strings."""
    return tuple(sorted(_MACHINES))


def parse_oracle(oracle: str) -> tuple[str, Optional[str]]:
    """Split an oracle string into ``(kind, machine)``.

    ``"axiomatic"`` parses to ``("axiomatic", None)``;
    ``"operational:<machine>"`` parses to ``("operational", machine)``
    for any machine in :func:`operational_machines`.  Anything else
    raises :class:`ValueError`.
    """
    if oracle == ORACLE_AXIOMATIC:
        return ("axiomatic", None)
    kind, sep, machine = oracle.partition(":")
    if kind == "operational" and sep and machine in _MACHINES:
        return ("operational", machine)
    raise ValueError(
        f"unknown oracle {oracle!r}; expected 'axiomatic' or "
        f"'operational:<machine>' with machine one of "
        f"{', '.join(operational_machines())}"
    )


def oracle_descriptor(oracle: str) -> dict:
    """Canonical content descriptor of an oracle (cache-key material).

    Axiomatic cells additionally hash their model descriptor; operational
    cells are fully determined by the machine variant captured here.
    """
    kind, machine = parse_oracle(oracle)
    if machine is None:
        return {"kind": "axiomatic"}
    return {"kind": "operational", "machine": _MACHINES[machine][1]}


@dataclass(frozen=True)
class VerdictSpec:
    """One (test, model, oracle) verdict cell: is the asked outcome allowed?"""

    test: LitmusTest
    model: ModelLike
    oracle: str = ORACLE_AXIOMATIC

    @property
    def model_name(self) -> str:
        """Display name of the cell's model (see :func:`model_display_name`)."""
        return model_display_name(self.model)


@dataclass(frozen=True)
class OutcomeSpec:
    """One (test, model, oracle) outcome-set cell under a projection."""

    test: LitmusTest
    model: ModelLike
    project: str = "full"
    oracle: str = ORACLE_AXIOMATIC

    @property
    def model_name(self) -> str:
        """Display name of the cell's model (see :func:`model_display_name`)."""
        return model_display_name(self.model)


CellSpec = Union[VerdictSpec, OutcomeSpec]

CellResult = Union[bool, frozenset]
"""``bool`` for verdicts, ``frozenset[Outcome]`` for outcome sets."""


def test_descriptor(test: LitmusTest) -> dict:
    """Canonical content descriptor of a litmus test (name-independent)."""
    asked = None
    if test.asked is not None:
        asked = {
            "regs": sorted([proc, reg, value] for proc, reg, value in test.asked.regs),
            "mem": sorted([addr, value] for addr, value in test.asked.mem),
        }
    return {
        "programs": [
            [repr(instr) for instr in program] for program in test.programs
        ],
        "locations": sorted(test.locations.items()),
        "initial_memory": sorted(test.initial_memory.items()),
        "asked": asked,
        "observed": sorted([proc, reg] for proc, reg in test.observed),
    }


def model_descriptor(model: ModelLike) -> dict:
    """Canonical content descriptor of a model (name-independent).

    Spec strings are resolved first, so a ``.model`` file's descriptor
    tracks the file's *current* content — the property the result cache
    and campaign digests key on.
    """
    resolved = _resolve(model)
    return {
        "clauses": [c.name for c in resolved.clauses],
        "dynamic_clauses": [c.name for c in resolved.dynamic_clauses],
        "load_value": resolved.load_value,
        "requires_coherence": resolved.requires_coherence,
    }


def cell_descriptor(cell: CellSpec) -> dict:
    """The canonical descriptor hashed into a cell's cache key.

    Operational cells omit the model descriptor: the machine alone
    determines the result, so cells that differ only in their display
    model share one cache entry.
    """
    _, machine = parse_oracle(cell.oracle)
    descriptor = {
        "engine_version": ENGINE_VERSION,
        "oracle": oracle_descriptor(cell.oracle),
        "test": test_descriptor(cell.test),
    }
    if machine is None:
        descriptor["model"] = model_descriptor(cell.model)
    if isinstance(cell, VerdictSpec):
        descriptor["kind"] = "verdict"
        return descriptor
    if isinstance(cell, OutcomeSpec):
        descriptor["kind"] = "outcomes"
        descriptor["project"] = cell.project
        return descriptor
    raise TypeError(f"unknown cell spec {cell!r}")


def _machine_outcomes(machine: str, test: LitmusTest, project: str) -> frozenset:
    return _MACHINES[machine][0](test, project)


def _machine_verdict(machine: str, test: LitmusTest) -> bool:
    """Does the machine allow the asked outcome?

    Computed against the full-projection outcome set: the asked outcome
    constrains a subset of the registers/locations a full outcome fixes,
    so allowance is containment of the asked bindings in some terminal
    state — exactly :meth:`repro.litmus.test.Outcome.matches` over the
    machine's terminal states.
    """
    asked = test.asked
    if asked is None:
        raise ValueError(f"test {test.name!r} has no asked outcome")
    outcomes = _machine_outcomes(machine, test, "full")
    return any(
        asked.regs <= outcome.regs and asked.mem <= outcome.mem
        for outcome in outcomes
    )


def evaluate_cell(cell: CellSpec, prefix: Optional[CandidatePrefix]) -> CellResult:
    """Evaluate one cell against a shared candidate prefix.

    ``prefix`` must have been built for ``cell.test`` (or be ``None`` to
    rebuild per call); sharing it across all axiomatic cells of one test
    is the engine's central amortization.  Engine dispatch happens
    underneath: :func:`~repro.core.axiomatic.is_allowed` and
    :func:`~repro.core.axiomatic.enumerate_outcomes` route each model to
    the frontier kernel when it is exact for it and to the order
    enumerator otherwise, and the kernel's solved DPs live on the shared
    prefix alongside the memoized order streams.  Operational cells
    bypass the prefix entirely and explore their abstract machine.
    """
    kind, machine = parse_oracle(cell.oracle)
    recorder = _obs_current()
    if recorder.active:
        recorder.incr("engine.cells.evaluated")
        if isinstance(cell, VerdictSpec):
            recorder.incr("engine.cells.verdict")
        elif isinstance(cell, OutcomeSpec):
            recorder.incr("engine.cells.outcomes")
        recorder.incr("engine.oracle." + kind)
        if machine is not None:
            recorder.incr("engine.oracle.operational.by." + machine)
    if isinstance(cell, VerdictSpec):
        if machine is None:
            return is_allowed(cell.test, _resolve(cell.model), prefix=prefix)
        return _machine_verdict(machine, cell.test)
    if isinstance(cell, OutcomeSpec):
        if machine is None:
            return enumerate_outcomes(
                cell.test, _resolve(cell.model), project=cell.project, prefix=prefix
            )
        return _machine_outcomes(machine, cell.test, cell.project)
    raise TypeError(f"unknown cell spec {cell!r}")
