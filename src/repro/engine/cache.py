"""On-disk result cache: content-hashed cells, JSON payloads.

Each cell's canonical descriptor (see :func:`repro.engine.cells
.cell_descriptor`) is hashed with SHA-256; the verdict / outcome-set
payload is stored as ``<hash>.json`` under the cache directory.  Because
the key covers the test content, the model's clauses and the engine
version, a cache entry can never serve a stale result: any change to the
inputs changes the key, and semantic engine changes bump
:data:`~repro.engine.cells.ENGINE_VERSION`.

Outcome sets round-trip losslessly (register names are strings, processor
ids / addresses / values are ints), so cached results are byte-identical
to freshly computed ones once rendered.  Writes go through a temp file and
an atomic rename, which keeps concurrent pool workers from ever observing
a torn entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Optional

from ..litmus.test import Outcome
from ..obs import current as _obs_current
from ..obs import incr as _obs_incr
from .cells import (
    ORACLE_AXIOMATIC,
    CellResult,
    CellSpec,
    OutcomeSpec,
    VerdictSpec,
    cell_descriptor,
    model_display_name,
)

__all__ = ["ResultCache", "cell_cache_key"]


def cell_cache_key(cell: CellSpec) -> str:
    """The SHA-256 content hash identifying a cell's cache entry."""
    descriptor = json.dumps(cell_descriptor(cell), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(descriptor.encode("utf-8")).hexdigest()


def _cell_label(cell: CellSpec) -> str:
    """The per-model (or per-oracle) label cache counters are keyed by.

    Axiomatic cells are keyed by their model's display name; operational
    cells by the oracle string (e.g. ``operational:gam``), matching the
    cache key's indifference to the display model.
    """
    if cell.oracle != ORACLE_AXIOMATIC:
        return cell.oracle
    return model_display_name(cell.model)


def _count_lookup(cell: CellSpec, outcome: str) -> None:
    """Record a cache lookup outcome (``hit``/``miss``) plus its label.

    The label string is only built when a recorder is active, so the
    disabled path costs one attribute check.
    """
    recorder = _obs_current()
    if not recorder.active:
        return
    recorder.incr("engine.cache." + outcome)
    recorder.incr("engine.cache." + outcome + ".by." + _cell_label(cell))


def _outcome_to_json(outcome: Outcome) -> dict:
    return {
        "regs": sorted([proc, reg, value] for proc, reg, value in outcome.regs),
        "mem": sorted([addr, value] for addr, value in outcome.mem),
    }


def _outcome_from_json(data: dict) -> Outcome:
    return Outcome(
        regs=frozenset((proc, reg, value) for proc, reg, value in data["regs"]),
        mem=frozenset((addr, value) for addr, value in data["mem"]),
    )


def _outcomes_to_json(outcomes: frozenset) -> list:
    return sorted(
        (_outcome_to_json(outcome) for outcome in outcomes),
        key=lambda d: (d["regs"], d["mem"]),
    )


def _outcomes_from_json(data: list) -> frozenset:
    return frozenset(_outcome_from_json(d) for d in data)


def _encode(cell: CellSpec, result: CellResult) -> dict:
    if isinstance(cell, VerdictSpec):
        return {"kind": "verdict", "allowed": result}
    if isinstance(cell, OutcomeSpec):
        return {"kind": "outcomes", "outcomes": _outcomes_to_json(result)}
    raise TypeError(f"unknown cell spec {cell!r}")


def _decode(cell: CellSpec, payload: dict) -> CellResult:
    if isinstance(cell, VerdictSpec):
        return bool(payload["allowed"])
    if isinstance(cell, OutcomeSpec):
        return _outcomes_from_json(payload["outcomes"])
    raise TypeError(f"unknown cell spec {cell!r}")


class ResultCache:
    """A directory of content-addressed cell results."""

    def __init__(self, root: os.PathLike | str) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def load(self, cell: CellSpec) -> Optional[CellResult]:
        """The cached result for ``cell``, or ``None`` on a miss.

        Unreadable or mismatched entries (e.g. a kind collision from a
        truncated write that slipped past the atomic rename) count as
        misses rather than errors; telemetry additionally counts them as
        ``engine.cache.stale``.
        """
        path = self._path(cell_cache_key(cell))
        try:
            text = path.read_text()
        except FileNotFoundError:
            _count_lookup(cell, "miss")
            return None
        except OSError:
            _obs_incr("engine.cache.stale")
            _count_lookup(cell, "miss")
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            _obs_incr("engine.cache.stale")
            _count_lookup(cell, "miss")
            return None
        if payload.get("kind") != cell_descriptor(cell)["kind"]:
            _obs_incr("engine.cache.stale")
            _count_lookup(cell, "miss")
            return None
        try:
            result = _decode(cell, payload)
        except (KeyError, TypeError, ValueError):
            _obs_incr("engine.cache.stale")
            _count_lookup(cell, "miss")
            return None
        _count_lookup(cell, "hit")
        return result

    def store(self, cell: CellSpec, result: CellResult) -> None:
        """Persist a cell result atomically (temp file + rename)."""
        _obs_incr("engine.cache.store")
        path = self._path(cell_cache_key(cell))
        payload = json.dumps(_encode(cell, result), sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
