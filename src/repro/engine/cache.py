"""On-disk result cache: content-hashed cells, JSON payloads.

Each cell's canonical descriptor (see :func:`repro.engine.cells
.cell_descriptor`) is hashed with SHA-256; the verdict / outcome-set
payload is stored as ``<hash>.json`` under the cache directory.  Because
the key covers the test content, the model's clauses and the engine
version, a cache entry can never serve a stale result: any change to the
inputs changes the key, and semantic engine changes bump
:data:`~repro.engine.cells.ENGINE_VERSION`.

Outcome sets round-trip losslessly (register names are strings, processor
ids / addresses / values are ints), so cached results are byte-identical
to freshly computed ones once rendered.  Writes go through a temp file and
an atomic rename, which keeps concurrent pool workers from ever observing
a torn entry.

The cache directory is safe to *share*: any number of processes — pool
workers, a verdict daemon's request threads, several independent runs —
may read and write one directory concurrently.  Writers never collide
(``mkstemp`` names are unique, ``os.replace`` is atomic, and duplicate
stores of one key are idempotent by construction: the key hashes the
inputs and the payload is a pure function of them), readers never see a
torn entry, and a writer that is killed mid-store leaves only an
orphaned ``*.tmp`` file that lookups ignore and
:meth:`ResultCache.purge_stale_tmp` sweeps.  A warmed directory can also
be shipped whole: :meth:`ResultCache.export_tarball` /
:meth:`ResultCache.import_tarball` move the store between machines with
per-entry digest validation and an :data:`~repro.engine.cells
.ENGINE_VERSION` stamp, so a foreign archive can never inject corrupt or
stale-semantics entries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import pathlib
import tarfile
import tempfile
from typing import Optional

from ..litmus.test import Outcome
from ..obs import current as _obs_current
from ..obs import incr as _obs_incr
from .cells import (
    ENGINE_VERSION,
    ORACLE_AXIOMATIC,
    CellResult,
    CellSpec,
    OutcomeSpec,
    VerdictSpec,
    cell_descriptor,
    model_display_name,
)

__all__ = [
    "CacheStats",
    "CacheTransferError",
    "ResultCache",
    "cell_cache_key",
    "outcomes_from_json",
    "outcomes_to_json",
]


def cell_cache_key(cell: CellSpec) -> str:
    """The SHA-256 content hash identifying a cell's cache entry."""
    descriptor = json.dumps(cell_descriptor(cell), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(descriptor.encode("utf-8")).hexdigest()


def _cell_label(cell: CellSpec) -> str:
    """The per-model (or per-oracle) label cache counters are keyed by.

    Axiomatic cells are keyed by their model's display name; operational
    cells by the oracle string (e.g. ``operational:gam``), matching the
    cache key's indifference to the display model.
    """
    if cell.oracle != ORACLE_AXIOMATIC:
        return cell.oracle
    return model_display_name(cell.model)


def _count_lookup(cell: CellSpec, outcome: str) -> None:
    """Record a cache lookup outcome (``hit``/``miss``) plus its label.

    The label string is only built when a recorder is active, so the
    disabled path costs one attribute check.
    """
    recorder = _obs_current()
    if not recorder.active:
        return
    recorder.incr("engine.cache." + outcome)
    recorder.incr("engine.cache." + outcome + ".by." + _cell_label(cell))


def _outcome_to_json(outcome: Outcome) -> dict:
    return {
        "regs": sorted([proc, reg, value] for proc, reg, value in outcome.regs),
        "mem": sorted([addr, value] for addr, value in outcome.mem),
    }


def _outcome_from_json(data: dict) -> Outcome:
    return Outcome(
        regs=frozenset((proc, reg, value) for proc, reg, value in data["regs"]),
        mem=frozenset((addr, value) for addr, value in data["mem"]),
    )


def outcomes_to_json(outcomes: frozenset) -> list:
    """Canonical JSON-able form of an outcome set (sorted, lossless).

    Shared by the on-disk cache payloads and the serve protocol's wire
    encoding, so a result crossing either boundary round-trips to the
    identical ``frozenset`` and renders byte-identically.
    """
    return sorted(
        (_outcome_to_json(outcome) for outcome in outcomes),
        key=lambda d: (d["regs"], d["mem"]),
    )


def outcomes_from_json(data: list) -> frozenset:
    """Inverse of :func:`outcomes_to_json`."""
    return frozenset(_outcome_from_json(d) for d in data)


def _encode(cell: CellSpec, result: CellResult) -> dict:
    if isinstance(cell, VerdictSpec):
        return {"kind": "verdict", "allowed": result}
    if isinstance(cell, OutcomeSpec):
        return {"kind": "outcomes", "outcomes": outcomes_to_json(result)}
    raise TypeError(f"unknown cell spec {cell!r}")


def _decode(cell: CellSpec, payload: dict) -> CellResult:
    if isinstance(cell, VerdictSpec):
        return bool(payload["allowed"])
    if isinstance(cell, OutcomeSpec):
        return outcomes_from_json(payload["outcomes"])
    raise TypeError(f"unknown cell spec {cell!r}")


class CacheTransferError(RuntimeError):
    """An export/import archive was refused (version mismatch, corruption,
    or an entry name that does not belong in a cache directory)."""


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """A point-in-time inventory of a cache directory.

    ``tmp_files`` counts orphaned ``*.tmp`` spool files — the residue of
    writers that died between ``mkstemp`` and the atomic rename (a
    SIGKILLed pool worker, a machine crash).  They are invisible to
    lookups but accumulate bytes forever unless swept by
    :meth:`ResultCache.purge_stale_tmp`.
    """

    entries: int
    entry_bytes: int
    tmp_files: int
    tmp_bytes: int


class ResultCache:
    """A directory of content-addressed cell results."""

    def __init__(self, root: os.PathLike | str) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def entry_path(self, cell: CellSpec) -> pathlib.Path:
        """Where ``cell``'s result lives (whether or not it exists yet)."""
        return self._path(cell_cache_key(cell))

    def stats(self) -> CacheStats:
        """Count committed entries and orphaned temp files, with sizes.

        Files that vanish mid-scan (a concurrent purge or rename) are
        simply skipped — the inventory is advisory, not transactional.
        """
        entries = entry_bytes = tmp_files = tmp_bytes = 0
        for path in sorted(self.root.iterdir()):
            try:
                size = path.stat().st_size
            except OSError:
                continue
            if path.suffix == ".json":
                entries += 1
                entry_bytes += size
            elif path.suffix == ".tmp":
                tmp_files += 1
                tmp_bytes += size
        return CacheStats(entries, entry_bytes, tmp_files, tmp_bytes)

    def purge_stale_tmp(self, older_than: float, now: float) -> tuple[int, int]:
        """Delete orphaned ``*.tmp`` files older than ``older_than`` seconds.

        ``now`` is the caller's wall-clock reading (``time.time()``),
        passed in rather than read here so the engine itself stays free
        of raw clock reads; ages are judged against file mtimes.  Young
        temp files are left alone — they may belong to a live writer.
        Returns ``(files_removed, bytes_reclaimed)``.
        """
        removed = reclaimed = 0
        for path in sorted(self.root.glob("*.tmp")):
            try:
                stat = path.stat()
            except OSError:
                continue
            if now - stat.st_mtime < older_than:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            reclaimed += stat.st_size
        return removed, reclaimed

    def load(self, cell: CellSpec) -> Optional[CellResult]:
        """The cached result for ``cell``, or ``None`` on a miss.

        Unreadable or mismatched entries (e.g. a kind collision from a
        truncated write that slipped past the atomic rename) count as
        misses rather than errors; telemetry additionally counts them as
        ``engine.cache.stale``.
        """
        path = self._path(cell_cache_key(cell))
        try:
            text = path.read_text()
        except FileNotFoundError:
            _count_lookup(cell, "miss")
            return None
        except OSError:
            _obs_incr("engine.cache.stale")
            _count_lookup(cell, "miss")
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            _obs_incr("engine.cache.stale")
            _count_lookup(cell, "miss")
            return None
        if payload.get("kind") != cell_descriptor(cell)["kind"]:
            _obs_incr("engine.cache.stale")
            _count_lookup(cell, "miss")
            return None
        try:
            result = _decode(cell, payload)
        except (KeyError, TypeError, ValueError):
            _obs_incr("engine.cache.stale")
            _count_lookup(cell, "miss")
            return None
        _count_lookup(cell, "hit")
        return result

    def store(self, cell: CellSpec, result: CellResult) -> None:
        """Persist a cell result atomically (temp file + rename).

        Safe against concurrent writers sharing the directory: the temp
        name is unique per writer, the rename is atomic, and two writers
        racing on one key write identical bytes (the payload is a pure
        function of the key's inputs), so whichever rename lands last is
        as good as the other.  If the directory itself vanished under a
        concurrent purge, it is recreated and the write retried once —
        the one failure shape a shared store must shrug off.
        """
        _obs_incr("engine.cache.store")
        payload = json.dumps(_encode(cell, result), sort_keys=True)
        try:
            self._spool(cell_cache_key(cell), payload)
        except FileNotFoundError:
            self.root.mkdir(parents=True, exist_ok=True)
            self._spool(cell_cache_key(cell), payload)

    def _spool(self, key: str, payload: str) -> None:
        """One temp-file + atomic-rename write, orphan-guarded.

        Any failure past ``mkstemp`` unlinks the temp file, so the only
        way to orphan one is a hard kill mid-write — and those orphans
        are invisible to lookups and swept by :meth:`purge_stale_tmp`.
        """
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- shipping a warmed store between machines -----------------------

    MANIFEST_NAME = "manifest.json"

    def export_tarball(self, path: os.PathLike | str) -> int:
        """Archive every committed entry into a gzipped tarball.

        The archive carries a manifest recording the exporting build's
        :data:`~repro.engine.cells.ENGINE_VERSION` and a SHA-256 digest
        per entry, which is what lets :meth:`import_tarball` refuse
        archives from a different engine or with corrupted payloads.
        Orphaned ``*.tmp`` files are never exported.  Returns the number
        of entries archived.
        """
        entries: dict[str, str] = {}
        blobs: list[tuple[str, bytes]] = []
        for entry in sorted(self.root.glob("*.json")):
            try:
                data = entry.read_bytes()
            except OSError:
                continue  # vanished mid-scan (concurrent purge): skip
            entries[entry.name] = hashlib.sha256(data).hexdigest()
            blobs.append((entry.name, data))
        manifest = json.dumps(
            {"format": 1, "engine_version": ENGINE_VERSION, "entries": entries},
            sort_keys=True,
        ).encode("utf-8")
        with tarfile.open(path, "w:gz") as tar:
            self._add_blob(tar, self.MANIFEST_NAME, manifest)
            for name, data in blobs:
                self._add_blob(tar, name, data)
        return len(blobs)

    @staticmethod
    def _add_blob(tar: tarfile.TarFile, name: str, data: bytes) -> None:
        info = tarfile.TarInfo(name)
        info.size = len(data)
        # Fixed metadata keeps the archive a pure function of the entries.
        info.mtime = 0
        info.mode = 0o644
        tar.addfile(info, io.BytesIO(data))

    def import_tarball(self, path: os.PathLike | str) -> tuple[int, int]:
        """Merge an exported archive into this directory.

        Every entry is digest-checked against the manifest before it is
        written (atomically, via the same temp-file + rename path live
        writers use, so an import can run against a store that is being
        served).  Returns ``(imported, skipped)`` where skipped counts
        entries already present.

        Raises:
            CacheTransferError: missing/unreadable manifest, an archive
                exported under a different ``ENGINE_VERSION`` (its
                entries were computed by different engine semantics and
                must not vouch for this build), a manifest entry missing
                from the archive, a digest mismatch, or an entry name
                that is not a plain ``<hex>.json`` file name.
        """
        imported = skipped = 0
        with tarfile.open(path, "r:gz") as tar:
            try:
                handle = tar.extractfile(self.MANIFEST_NAME)
            except KeyError:
                handle = None
            if handle is None:
                raise CacheTransferError(
                    f"{path}: no {self.MANIFEST_NAME} — not a cache export"
                )
            try:
                manifest = json.loads(handle.read().decode("utf-8"))
            except ValueError as exc:
                raise CacheTransferError(
                    f"{path}: unreadable manifest ({exc})"
                ) from exc
            version = manifest.get("engine_version")
            if version != ENGINE_VERSION:
                raise CacheTransferError(
                    f"{path}: exported under engine version {version}, "
                    f"this build runs {ENGINE_VERSION}; entries computed "
                    "by different engine semantics are refused"
                )
            entries = manifest.get("entries")
            if not isinstance(entries, dict):
                raise CacheTransferError(f"{path}: malformed manifest entries")
            for name in sorted(entries):
                digest = entries[name]
                stem, dot, suffix = name.rpartition(".")
                if (
                    dot != "."
                    or suffix != "json"
                    or not stem
                    or not all(c in "0123456789abcdef" for c in stem)
                ):
                    raise CacheTransferError(
                        f"{path}: entry name {name!r} is not a cache key"
                    )
                try:
                    blob = tar.extractfile(name)
                except KeyError:
                    blob = None
                if blob is None:
                    raise CacheTransferError(
                        f"{path}: manifest entry {name!r} missing from archive"
                    )
                data = blob.read()
                if hashlib.sha256(data).hexdigest() != digest:
                    raise CacheTransferError(
                        f"{path}: digest mismatch for {name!r} — archive "
                        "corrupt, refusing all of it"
                    )
                destination = self.root / name
                try:
                    if destination.read_bytes() == data:
                        skipped += 1
                        continue
                except OSError:
                    pass
                self._spool(stem, data.decode("utf-8"))
                imported += 1
        return imported, skipped
