"""On-disk result cache: content-hashed cells, JSON payloads.

Each cell's canonical descriptor (see :func:`repro.engine.cells
.cell_descriptor`) is hashed with SHA-256; the verdict / outcome-set
payload is stored as ``<hash>.json`` under the cache directory.  Because
the key covers the test content, the model's clauses and the engine
version, a cache entry can never serve a stale result: any change to the
inputs changes the key, and semantic engine changes bump
:data:`~repro.engine.cells.ENGINE_VERSION`.

Outcome sets round-trip losslessly (register names are strings, processor
ids / addresses / values are ints), so cached results are byte-identical
to freshly computed ones once rendered.  Writes go through a temp file and
an atomic rename, which keeps concurrent pool workers from ever observing
a torn entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile
from typing import Optional

from ..litmus.test import Outcome
from ..obs import current as _obs_current
from ..obs import incr as _obs_incr
from .cells import (
    ORACLE_AXIOMATIC,
    CellResult,
    CellSpec,
    OutcomeSpec,
    VerdictSpec,
    cell_descriptor,
    model_display_name,
)

__all__ = ["CacheStats", "ResultCache", "cell_cache_key"]


def cell_cache_key(cell: CellSpec) -> str:
    """The SHA-256 content hash identifying a cell's cache entry."""
    descriptor = json.dumps(cell_descriptor(cell), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(descriptor.encode("utf-8")).hexdigest()


def _cell_label(cell: CellSpec) -> str:
    """The per-model (or per-oracle) label cache counters are keyed by.

    Axiomatic cells are keyed by their model's display name; operational
    cells by the oracle string (e.g. ``operational:gam``), matching the
    cache key's indifference to the display model.
    """
    if cell.oracle != ORACLE_AXIOMATIC:
        return cell.oracle
    return model_display_name(cell.model)


def _count_lookup(cell: CellSpec, outcome: str) -> None:
    """Record a cache lookup outcome (``hit``/``miss``) plus its label.

    The label string is only built when a recorder is active, so the
    disabled path costs one attribute check.
    """
    recorder = _obs_current()
    if not recorder.active:
        return
    recorder.incr("engine.cache." + outcome)
    recorder.incr("engine.cache." + outcome + ".by." + _cell_label(cell))


def _outcome_to_json(outcome: Outcome) -> dict:
    return {
        "regs": sorted([proc, reg, value] for proc, reg, value in outcome.regs),
        "mem": sorted([addr, value] for addr, value in outcome.mem),
    }


def _outcome_from_json(data: dict) -> Outcome:
    return Outcome(
        regs=frozenset((proc, reg, value) for proc, reg, value in data["regs"]),
        mem=frozenset((addr, value) for addr, value in data["mem"]),
    )


def _outcomes_to_json(outcomes: frozenset) -> list:
    return sorted(
        (_outcome_to_json(outcome) for outcome in outcomes),
        key=lambda d: (d["regs"], d["mem"]),
    )


def _outcomes_from_json(data: list) -> frozenset:
    return frozenset(_outcome_from_json(d) for d in data)


def _encode(cell: CellSpec, result: CellResult) -> dict:
    if isinstance(cell, VerdictSpec):
        return {"kind": "verdict", "allowed": result}
    if isinstance(cell, OutcomeSpec):
        return {"kind": "outcomes", "outcomes": _outcomes_to_json(result)}
    raise TypeError(f"unknown cell spec {cell!r}")


def _decode(cell: CellSpec, payload: dict) -> CellResult:
    if isinstance(cell, VerdictSpec):
        return bool(payload["allowed"])
    if isinstance(cell, OutcomeSpec):
        return _outcomes_from_json(payload["outcomes"])
    raise TypeError(f"unknown cell spec {cell!r}")


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """A point-in-time inventory of a cache directory.

    ``tmp_files`` counts orphaned ``*.tmp`` spool files — the residue of
    writers that died between ``mkstemp`` and the atomic rename (a
    SIGKILLed pool worker, a machine crash).  They are invisible to
    lookups but accumulate bytes forever unless swept by
    :meth:`ResultCache.purge_stale_tmp`.
    """

    entries: int
    entry_bytes: int
    tmp_files: int
    tmp_bytes: int


class ResultCache:
    """A directory of content-addressed cell results."""

    def __init__(self, root: os.PathLike | str) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def entry_path(self, cell: CellSpec) -> pathlib.Path:
        """Where ``cell``'s result lives (whether or not it exists yet)."""
        return self._path(cell_cache_key(cell))

    def stats(self) -> CacheStats:
        """Count committed entries and orphaned temp files, with sizes.

        Files that vanish mid-scan (a concurrent purge or rename) are
        simply skipped — the inventory is advisory, not transactional.
        """
        entries = entry_bytes = tmp_files = tmp_bytes = 0
        for path in sorted(self.root.iterdir()):
            try:
                size = path.stat().st_size
            except OSError:
                continue
            if path.suffix == ".json":
                entries += 1
                entry_bytes += size
            elif path.suffix == ".tmp":
                tmp_files += 1
                tmp_bytes += size
        return CacheStats(entries, entry_bytes, tmp_files, tmp_bytes)

    def purge_stale_tmp(self, older_than: float, now: float) -> tuple[int, int]:
        """Delete orphaned ``*.tmp`` files older than ``older_than`` seconds.

        ``now`` is the caller's wall-clock reading (``time.time()``),
        passed in rather than read here so the engine itself stays free
        of raw clock reads; ages are judged against file mtimes.  Young
        temp files are left alone — they may belong to a live writer.
        Returns ``(files_removed, bytes_reclaimed)``.
        """
        removed = reclaimed = 0
        for path in sorted(self.root.glob("*.tmp")):
            try:
                stat = path.stat()
            except OSError:
                continue
            if now - stat.st_mtime < older_than:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            reclaimed += stat.st_size
        return removed, reclaimed

    def load(self, cell: CellSpec) -> Optional[CellResult]:
        """The cached result for ``cell``, or ``None`` on a miss.

        Unreadable or mismatched entries (e.g. a kind collision from a
        truncated write that slipped past the atomic rename) count as
        misses rather than errors; telemetry additionally counts them as
        ``engine.cache.stale``.
        """
        path = self._path(cell_cache_key(cell))
        try:
            text = path.read_text()
        except FileNotFoundError:
            _count_lookup(cell, "miss")
            return None
        except OSError:
            _obs_incr("engine.cache.stale")
            _count_lookup(cell, "miss")
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            _obs_incr("engine.cache.stale")
            _count_lookup(cell, "miss")
            return None
        if payload.get("kind") != cell_descriptor(cell)["kind"]:
            _obs_incr("engine.cache.stale")
            _count_lookup(cell, "miss")
            return None
        try:
            result = _decode(cell, payload)
        except (KeyError, TypeError, ValueError):
            _obs_incr("engine.cache.stale")
            _count_lookup(cell, "miss")
            return None
        _count_lookup(cell, "hit")
        return result

    def store(self, cell: CellSpec, result: CellResult) -> None:
        """Persist a cell result atomically (temp file + rename)."""
        _obs_incr("engine.cache.store")
        path = self._path(cell_cache_key(cell))
        payload = json.dumps(_encode(cell, result), sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
