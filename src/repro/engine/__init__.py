"""Batch evaluation engine: shared candidates, parallel fan-out, caching.

Every harness in this repository ultimately asks its oracle the same two
questions — "is this outcome allowed?" and "what is the outcome set?" —
over a *grid* of (litmus test × memory model) cells: the verdict matrix
sweeps the model zoo, the strength lattice compares outcome sets
pairwise, and the equivalence checker pits each axiomatic model against
its operational twin.  Run naively, every cell re-derives the same
per-test work (value domains, program-run enumeration, event and
candidate construction) once per model — for an 8-model zoo that is ~8×
redundant.  This package is the shared harness that amortizes it, in the
tradition of the single-candidate-generation litmus tools (herd and
friends).

Every cell carries an *oracle*: ``"axiomatic"`` (the default) answers it
with the axiomatic enumeration of the cell's model, while
``"operational:<machine>"`` answers it by exhaustively exploring one of
the abstract machines (GAM, GAM0, SC, TSO) — the same specs, scheduler,
cache and telemetry serve both definitions, which is what makes
machine-vs-axioms differential campaigns ordinary engine work.

Architecture::

    cells (VerdictSpec / OutcomeSpec, × oracle)
        │  grouped per test, order preserved
        ▼
    scheduler ── jobs=1 ──► in-process batches
        │   (no deadline)        │
        │  jobs>1 or deadline    │ one CandidatePrefix per test:
        ▼                        │   value domains + program runs
    ProcessPoolExecutor          │   + candidate bases, shared by
    (one batch per future,       │   every model; static-ppo DAGs and
     consumed in submission      │   (mo, rf) enumerations memoized
     order = deterministic;      │   per clause set
     killable: deadlines and     │
     crashed workers recover     ▼
     per ExecutionPolicy)   ResultCache (optional, content-hashed JSON;
        │                   key = test content + oracle (model clauses
        └─────────────────► or machine variant) + ENGINE_VERSION, so
                            entries can't go stale)

The three layers:

* :mod:`repro.engine.cells` — cell specs, canonical content descriptors,
  and single-cell evaluation against a shared
  :class:`~repro.core.axiomatic.CandidatePrefix`;
* :mod:`repro.engine.scheduler` — per-test batching, the worker protocol
  (errors travel back as data and re-raise with the offending test's
  name), and deterministic result ordering;
* :mod:`repro.engine.cache` — the optional on-disk result cache that
  makes repeated ``matrix`` / ``strength`` / CI runs incremental;
* :mod:`repro.engine.policy` + :mod:`repro.engine.faults` — the
  fault-tolerance layer: :class:`~repro.engine.policy.ExecutionPolicy`
  (per-batch deadlines, bounded retries with backoff, ``on_error =
  fail | skip | quarantine``) decides what failed batches become, and
  the deterministic fault-injection harness (``REPRO_FAULTS`` /
  ``fault_plan=``) keeps every recovery path under test.

``eval.litmus_matrix``, ``eval.strength`` and ``equivalence.checker`` are
wired through :func:`evaluate_cells`; the ``matrix`` / ``strength`` /
``equiv`` CLI commands expose ``--jobs N`` and ``--cache DIR``.  Cells
are agnostic to where their tests come from: the static catalogue, a
parsed ``.litmus`` corpus or the cycle generator
(:mod:`repro.litmus.frontend`) all flow through unchanged — the cache
keys hash test *content*, so structurally identical generated and
hand-written tests share entries.  Models flow the same way: a cell's
model is any :data:`~repro.engine.cells.ModelLike` — a registry name, a
``.model`` file path, a ``ctor:`` construction spec or a built
:class:`~repro.core.axiomatic.MemoryModel` — and the cache keys hash
model *content* (clauses + axioms), so a file-defined model caches
correctly and an edited one misses.  The per-test batch is also the seam
for scale-out: :mod:`repro.serve` swaps the per-call pool for a
long-lived daemon owning one warm executor and one shared
:class:`ResultCache`, and its ``RemoteScheduler`` drops into the same
``evaluate_cells`` signature — the cells and the cache are untouched.
"""

from __future__ import annotations

from .cache import (
    CacheStats,
    CacheTransferError,
    ResultCache,
    cell_cache_key,
    outcomes_from_json,
    outcomes_to_json,
)
from .cells import (
    ENGINE_VERSION,
    ORACLE_AXIOMATIC,
    CellResult,
    CellSpec,
    ModelLike,
    OutcomeSpec,
    VerdictSpec,
    evaluate_cell,
    model_display_name,
    operational_machines,
    oracle_descriptor,
    parse_oracle,
)
from .faults import (
    FAULT_KINDS,
    FAULTS_ENV_VAR,
    FaultAction,
    FaultPlan,
    InjectedFault,
    fault_plan_from_env,
    parse_fault_plan,
)
from .policy import (
    DEFAULT_POLICY,
    FAILURE_REASONS,
    ON_ERROR_MODES,
    CellFailure,
    ExecutionPolicy,
)
from .scheduler import EngineWorkerError, evaluate_cells

__all__ = [
    "ENGINE_VERSION",
    "ORACLE_AXIOMATIC",
    "CellResult",
    "CellSpec",
    "ModelLike",
    "OutcomeSpec",
    "VerdictSpec",
    "ResultCache",
    "cell_cache_key",
    "evaluate_cell",
    "evaluate_cells",
    "model_display_name",
    "operational_machines",
    "oracle_descriptor",
    "parse_oracle",
    "EngineWorkerError",
    "CacheStats",
    "CacheTransferError",
    "outcomes_from_json",
    "outcomes_to_json",
    "CellFailure",
    "DEFAULT_POLICY",
    "ExecutionPolicy",
    "FAILURE_REASONS",
    "ON_ERROR_MODES",
    "FAULT_KINDS",
    "FAULTS_ENV_VAR",
    "FaultAction",
    "FaultPlan",
    "InjectedFault",
    "fault_plan_from_env",
    "parse_fault_plan",
]
