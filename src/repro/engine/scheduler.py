"""Cell scheduler: shared-prefix batches, serial or pooled, cache-aware.

The scheduler turns a flat cell list into per-test *batches* so every
batch shares one :class:`~repro.core.axiomatic.CandidatePrefix` — the
model-independent per-test work is computed exactly once no matter how
many models are being judged.  Batches are the unit of fan-out: with
``jobs > 1`` they are mapped over a ``multiprocessing`` pool (one test's
cells never split across workers, which would forfeit the sharing), and
``pool.map`` keeps completion order deterministic regardless of worker
scheduling.  Results always come back in the order the cells were given.

Worker failures are translated, not propagated raw: a
:class:`~repro.core.axiomatic.DomainOverflowError` raised inside a worker
is re-raised in the parent with the offending test's name, and any other
exception surfaces as an :class:`EngineWorkerError` naming the test and
carrying the worker-side traceback text — never a bare pool traceback.

Telemetry (:mod:`repro.obs`) crosses the pool boundary the same way the
errors do — as data: when a recorder is active each worker collects into
a private recorder and ships its :class:`~repro.obs.StatsSnapshot` back
inside the ``("ok", ...)`` tuple, and the parent merges them in
deterministic batch order, so ``--jobs N`` counter totals equal the
serial run exactly.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Callable, Iterable, Optional, Sequence

from ..core.axiomatic import CandidatePrefix, DomainOverflowError
from ..litmus.test import LitmusTest
from ..obs import collecting, current, incr, observe, time_block
from .cache import ResultCache, cell_cache_key
from .cells import CellResult, CellSpec, evaluate_cell, test_descriptor

__all__ = ["EngineWorkerError", "evaluate_cells"]


class EngineWorkerError(RuntimeError):
    """A cell evaluation failed; carries the test name and the worker
    traceback.

    ``worker_traceback`` is the formatted traceback captured inside the
    worker process (empty when the failure had none to capture); it is
    appended to the message so pool failures stay debuggable even though
    the original frames cannot cross the process boundary.
    """

    def __init__(
        self, test_name: str, message: str, worker_traceback: str = ""
    ) -> None:
        text = f"test {test_name!r}: {message}"
        if worker_traceback:
            text += "\n--- worker traceback ---\n" + worker_traceback.rstrip()
        super().__init__(text)
        self.test_name = test_name
        self.worker_traceback = worker_traceback


def _group_by_test(
    cells: Sequence[CellSpec],
) -> list[tuple[LitmusTest, list[int]]]:
    """Group cell indices by test identity, preserving first-seen order.

    Identity is object identity first (the common case: callers build all
    of a test's cells from one object) with a content-descriptor fallback
    so structurally identical duplicates still share a prefix.
    """
    groups: list[tuple[LitmusTest, list[int]]] = []
    by_key: dict = {}
    for index, cell in enumerate(cells):
        key = id(cell.test)
        slot = by_key.get(key)
        if slot is None:
            content = repr(sorted(test_descriptor(cell.test).items()))
            slot = by_key.get(content)
            if slot is None:
                groups.append((cell.test, []))
                slot = by_key[content] = len(groups) - 1
            by_key[key] = slot
        groups[slot][1].append(index)
    return groups


def _evaluate_batch(
    test: LitmusTest,
    cells: Sequence[CellSpec],
    cache_dir: Optional[str],
) -> list[CellResult]:
    """Evaluate one test's cells with a shared prefix, through the cache.

    The prefix is built lazily: a batch fully served from the cache never
    enumerates a single program run.
    """
    with time_block("engine.batch.seconds"):
        incr("engine.batches")
        observe("engine.batch.cells", len(cells))
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        prefix: Optional[CandidatePrefix] = None
        results: list[CellResult] = []
        for cell in cells:
            cached = cache.load(cell) if cache is not None else None
            if cached is not None:
                results.append(cached)
                continue
            if prefix is None:
                prefix = CandidatePrefix(test)
            with time_block("engine.cell.seconds"):
                result = evaluate_cell(cell, prefix)
            if cache is not None:
                cache.store(cell, result)
            results.append(result)
        return results


def _run_batch(payload: tuple) -> tuple:
    """Pool-side batch runner; returns a tagged result, never raises.

    Exceptions crossing a pool boundary lose their context and surface as
    opaque tracebacks, so errors travel back as data — tagged tuples
    carrying the test name, message and formatted worker traceback — and
    are re-raised by :func:`evaluate_cells`.  When the parent had stats
    collection on, the batch runs under a private recorder whose snapshot
    rides back in the ``("ok", results, snapshot)`` tuple.
    """
    test, cells, cache_dir, collect_stats = payload
    try:
        if collect_stats:
            with collecting() as recorder:
                results = _evaluate_batch(test, cells, cache_dir)
                snapshot = recorder.snapshot()
            return ("ok", results, snapshot)
        return ("ok", _evaluate_batch(test, cells, cache_dir), None)
    except DomainOverflowError as exc:
        return ("domain-overflow", test.name, str(exc))
    except Exception as exc:
        return (
            "error",
            test.name,
            f"{type(exc).__name__}: {exc}",
            traceback.format_exc(),
        )


def evaluate_cells(
    cells: Sequence[CellSpec],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    on_batch: Optional[Callable[[LitmusTest, Sequence[CellResult]], None]] = None,
) -> list[CellResult]:
    """Evaluate a cell grid; results are ordered exactly like ``cells``.

    ``jobs=1`` (the default) runs everything in-process — no pool, no
    pickling, behaviour identical to the serial seed path.  ``jobs > 1``
    fans per-test batches out over a ``multiprocessing`` pool.  With
    ``cache_dir`` set, results are served from / persisted to the on-disk
    :class:`~repro.engine.cache.ResultCache`.

    ``on_batch`` is the streaming hook long-running drivers (the campaign
    runner, progress reporting) plug into: it is called once per per-test
    batch, in deterministic first-seen test order, with the test and its
    cell results — in pooled mode as soon as each batch completes, so a
    caller can checkpoint or log without waiting for the whole grid.
    Failed batches never reach the hook; they surface as exceptions from
    this function once their turn comes.
    """
    cells = list(cells)
    if not cells:
        return []
    recorder = current()
    recorder.incr("engine.cells.requested", len(cells))
    if cache_dir is not None:
        ResultCache(cache_dir)  # create/validate in the parent: a bad path
        # should fail here with a plain OSError, not as a worker error.
    groups = _group_by_test(cells)
    payloads = [
        (test, [cells[i] for i in indices], cache_dir, recorder.active)
        for test, indices in groups
    ]
    with time_block("engine.wall.seconds"):
        if jobs <= 1 or len(payloads) == 1:
            # In-process: evaluate directly so real exceptions keep their
            # traceback; only DomainOverflowError gains the test-name
            # prefix.  Instrumentation records straight into the parent
            # recorder — the same code paths the workers run, which is
            # what makes serial and pooled counter totals identical.
            tagged = []
            for test, batch, cdir, _collect in payloads:
                try:
                    outcome = ("ok", _evaluate_batch(test, batch, cdir))
                except DomainOverflowError as exc:
                    raise DomainOverflowError(
                        f"test {test.name!r}: {exc}"
                    ) from exc
                tagged.append(outcome)
                if on_batch is not None:
                    on_batch(test, outcome[1])
        else:
            with multiprocessing.Pool(processes=min(jobs, len(payloads))) as pool:
                # imap (not map): same deterministic order, but batches
                # stream back as they finish so the on_batch hook fires
                # incrementally.
                tagged = []
                for payload, outcome in zip(
                    payloads, pool.imap(_run_batch, payloads)
                ):
                    if outcome[0] == "ok" and outcome[2] is not None:
                        recorder.merge(outcome[2])
                    tagged.append(outcome)
                    if on_batch is not None and outcome[0] == "ok":
                        on_batch(payload[0], outcome[1])
    results: list[Optional[CellResult]] = [None] * len(cells)
    for (test, indices), outcome in zip(groups, tagged):
        if outcome[0] == "domain-overflow":
            _, test_name, message = outcome
            raise DomainOverflowError(f"test {test_name!r}: {message}")
        if outcome[0] == "error":
            _, test_name, message, worker_tb = outcome
            raise EngineWorkerError(test_name, message, worker_tb)
        for index, result in zip(indices, outcome[1]):
            results[index] = result
    return results
