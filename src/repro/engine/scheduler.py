"""Cell scheduler: shared-prefix batches, serial or pooled, fault-tolerant.

The scheduler turns a flat cell list into per-test *batches* so every
batch shares one :class:`~repro.core.axiomatic.CandidatePrefix` — the
model-independent per-test work is computed exactly once no matter how
many models are being judged.  Batches are the unit of fan-out *and* the
unit of failure: with ``jobs > 1`` (or a per-batch deadline armed) they
are dispatched over a :class:`concurrent.futures.ProcessPoolExecutor`,
and a batch that raises, hangs past its deadline or takes its worker
down with it is retried, skipped, quarantined or raised according to the
run's :class:`~repro.engine.policy.ExecutionPolicy`.  Results always
come back in the order the cells were given; pooled batches are consumed
strictly in submission order, which keeps the ``on_batch`` stream and
all telemetry merges deterministic regardless of worker scheduling.

Failure semantics are identical serial and pooled.  Worker failures are
translated, not propagated raw: a
:class:`~repro.core.axiomatic.DomainOverflowError` raised inside a batch
re-raises in the parent with the offending test's name, and any other
exception surfaces as an :class:`EngineWorkerError` naming the test —
carrying the formatted worker-side traceback when it crossed a process
boundary, or chaining the original exception via ``__cause__`` when it
happened in-process.  Under ``on_error=skip|quarantine`` the same
failures instead finalize as :class:`~repro.engine.policy.CellFailure`
sentinels occupying the failed cells' result slots.

Crashes and deadlines need a killable executor, which is why deadlines
route even ``jobs=1`` through a one-worker pool: a batch that exceeds
``policy.timeout`` has its whole pool killed (``engine.timeouts`` +
``engine.pool.restarts``) and innocent in-flight batches are re-submitted
on a fresh pool without consuming their retry budgets.  A worker death
surfaces as ``BrokenProcessPool``; since any in-flight batch could be
the culprit, the scheduler re-runs the in-flight window one batch at a
time on a fresh pool — the batch that breaks a pool it has to itself is
the crasher, and innocents are never blamed, so quarantine contents are
deterministic.  The :mod:`~repro.engine.faults` harness injects exactly
these failures on demand, keeping every recovery path under test.

Telemetry (:mod:`repro.obs`) crosses the pool boundary the same way the
errors do — as data: when a recorder is active each worker collects into
a private recorder and ships its :class:`~repro.obs.StatsSnapshot` back
inside the ``("ok", ...)`` tuple, and the parent merges them in
deterministic batch order, so ``--jobs N`` counter totals equal the
serial run exactly.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional, Sequence

from ..core.axiomatic import CandidatePrefix, DomainOverflowError
from ..litmus.test import LitmusTest
from ..obs import collecting, current, incr, monotonic, observe, time_block
from .cache import ResultCache, cell_cache_key
from .cells import CellResult, CellSpec, evaluate_cell, test_descriptor
from .faults import FaultPlan, fault_plan_from_env, fire_after_batch, fire_before_batch
from .policy import DEFAULT_POLICY, ON_ERROR_QUARANTINE, CellFailure, ExecutionPolicy

__all__ = ["EngineWorkerError", "evaluate_cells"]


class EngineWorkerError(RuntimeError):
    """A cell evaluation failed; carries the test name and the worker
    traceback.

    ``worker_traceback`` is the formatted traceback captured inside the
    worker process (empty when the failure happened in-process — there
    the original exception rides on ``__cause__`` instead); it is
    appended to the message so pool failures stay debuggable even though
    the original frames cannot cross the process boundary.
    """

    def __init__(
        self, test_name: str, message: str, worker_traceback: str = ""
    ) -> None:
        text = f"test {test_name!r}: {message}"
        if worker_traceback:
            text += "\n--- worker traceback ---\n" + worker_traceback.rstrip()
        super().__init__(text)
        self.test_name = test_name
        self.worker_traceback = worker_traceback


def _group_by_test(
    cells: Sequence[CellSpec],
) -> list[tuple[LitmusTest, list[int]]]:
    """Group cell indices by test identity, preserving first-seen order.

    Identity is object identity first (the common case: callers build all
    of a test's cells from one object) with a content-descriptor fallback
    so structurally identical duplicates still share a prefix.
    """
    groups: list[tuple[LitmusTest, list[int]]] = []
    by_key: dict = {}
    for index, cell in enumerate(cells):
        key = id(cell.test)
        slot = by_key.get(key)
        if slot is None:
            content = repr(sorted(test_descriptor(cell.test).items()))
            slot = by_key.get(content)
            if slot is None:
                groups.append((cell.test, []))
                slot = by_key[content] = len(groups) - 1
            by_key[key] = slot
        groups[slot][1].append(index)
    return groups


def _evaluate_batch(
    test: LitmusTest,
    cells: Sequence[CellSpec],
    cache_dir: Optional[str],
) -> list[CellResult]:
    """Evaluate one test's cells with a shared prefix, through the cache.

    The prefix is built lazily: a batch fully served from the cache never
    enumerates a single program run.
    """
    with time_block("engine.batch.seconds"):
        incr("engine.batches")
        observe("engine.batch.cells", len(cells))
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        prefix: Optional[CandidatePrefix] = None
        results: list[CellResult] = []
        for cell in cells:
            cached = cache.load(cell) if cache is not None else None
            if cached is not None:
                results.append(cached)
                continue
            if prefix is None:
                prefix = CandidatePrefix(test)
            with time_block("engine.cell.seconds"):
                result = evaluate_cell(cell, prefix)
            if cache is not None:
                cache.store(cell, result)
            results.append(result)
        return results


def _run_batch_guts(
    batch_index: int,
    attempt: int,
    test: LitmusTest,
    cells: Sequence[CellSpec],
    cache_dir: Optional[str],
    fault_plan: Optional[FaultPlan],
    in_worker: bool,
) -> list[CellResult]:
    """Evaluate one batch with its planned faults fired around it.

    Pre-evaluation faults (raise/hang/crash) fire before the batch runs;
    the cache-corruption fault fires after the batch has stored its
    results.  With no plan armed this is exactly :func:`_evaluate_batch`.
    """
    if fault_plan:
        fire_before_batch(fault_plan, batch_index, test.name, attempt, in_worker)
    results = _evaluate_batch(test, cells, cache_dir)
    if fault_plan:
        fire_after_batch(fault_plan, batch_index, test.name, attempt, cells, cache_dir)
    return results


def _run_batch(payload: tuple) -> tuple:
    """Pool-side batch runner; returns a tagged result, never raises.

    Exceptions crossing a pool boundary lose their context and surface as
    opaque tracebacks, so errors travel back as data — tagged tuples
    carrying the test name, message and formatted worker traceback — and
    are translated by :func:`evaluate_cells`.  When the parent had stats
    collection on, the batch runs under a private recorder whose snapshot
    rides back in the ``("ok", results, snapshot)`` tuple.
    """
    batch_index, attempt, test, cells, cache_dir, collect_stats, fault_plan = payload
    try:
        if collect_stats:
            with collecting() as recorder:
                results = _run_batch_guts(
                    batch_index, attempt, test, cells, cache_dir, fault_plan, True
                )
                snapshot = recorder.snapshot()
            return ("ok", results, snapshot)
        results = _run_batch_guts(
            batch_index, attempt, test, cells, cache_dir, fault_plan, True
        )
        return ("ok", results, None)
    except DomainOverflowError as exc:
        return ("domain-overflow", test.name, str(exc))
    except Exception as exc:
        return (
            "error",
            test.name,
            f"{type(exc).__name__}: {exc}",
            traceback.format_exc(),
        )


def _backoff_sleep(policy: ExecutionPolicy, attempt: int) -> None:
    """Sleep before retry ``attempt`` (>= 2): ``backoff * 2**(attempt-2)``."""
    if policy.backoff <= 0:
        return
    time.sleep(policy.backoff * (2 ** (attempt - 2)))


def _kill_executor(executor: ProcessPoolExecutor) -> None:
    """Tear a pool down hard: SIGKILL its workers, abandon its futures.

    A hung batch never exits voluntarily, so a deadline kill cannot wait
    for workers; ``Process.kill`` plus a no-wait shutdown is the only
    teardown that is guaranteed to return.
    """
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except (OSError, ValueError):
            pass
    executor.shutdown(wait=False, cancel_futures=True)


def evaluate_cells(
    cells: Sequence[CellSpec],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    on_batch: Optional[Callable[[LitmusTest, Sequence[CellResult]], None]] = None,
    policy: Optional[ExecutionPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    on_stall: Optional[Callable[[LitmusTest, float], None]] = None,
    stall_after: float = 30.0,
) -> list[CellResult]:
    """Evaluate a cell grid; results are ordered exactly like ``cells``.

    ``jobs=1`` (the default) runs everything in-process — no pool, no
    pickling, behaviour identical to the serial seed path.  ``jobs > 1``
    fans per-test batches out over a process pool; a ``policy`` with a
    deadline routes even ``jobs=1`` through a one-worker pool, because
    only a pool can be killed out from under a hung batch.  With
    ``cache_dir`` set, results are served from / persisted to the on-disk
    :class:`~repro.engine.cache.ResultCache`.

    ``policy`` (default :data:`~repro.engine.policy.DEFAULT_POLICY`)
    decides what failed batches become: exceptions (``fail``), inline
    :class:`~repro.engine.policy.CellFailure` sentinels (``skip``), or
    counted-and-reported sentinels (``quarantine``) — after ``retries``
    re-submissions with exponential backoff.  ``fault_plan`` arms the
    deterministic fault-injection harness (defaults to the plan in the
    ``REPRO_FAULTS`` environment variable, normally empty).

    ``on_batch`` is the streaming hook long-running drivers (the campaign
    runner, progress reporting) plug into: it is called once per per-test
    batch, in deterministic first-seen test order, with the test and its
    cell results — in pooled mode as soon as each batch's turn in the
    order arrives, so a caller can checkpoint or log without waiting for
    the whole grid.  Batches finalized as failures under
    ``skip``/``quarantine`` reach the hook as lists of ``CellFailure``;
    under ``fail`` the failure raises when its turn comes and later
    batches are abandoned.  ``on_stall`` (pooled only) is called with the
    pending test and seconds waited every ``stall_after`` seconds spent
    waiting on one batch, so hung runs are visible before any deadline
    fires.
    """
    cells = list(cells)
    if not cells:
        return []
    if policy is None:
        policy = DEFAULT_POLICY
    plan = fault_plan if fault_plan is not None else fault_plan_from_env()
    recorder = current()
    recorder.incr("engine.cells.requested", len(cells))
    if cache_dir is not None:
        ResultCache(cache_dir)  # create/validate in the parent: a bad path
        # should fail here with a plain OSError, not as a worker error.
    groups = _group_by_test(cells)
    results: list[Optional[CellResult]] = [None] * len(cells)

    def _accept(slot: int, batch_results: Sequence[CellResult]) -> None:
        test, indices = groups[slot]
        for index, result in zip(indices, batch_results):
            results[index] = result
        if on_batch is not None:
            on_batch(test, list(batch_results))

    def _finalize_failure(
        slot: int,
        reason: str,
        message: str,
        worker_tb: str,
        attempt: int,
        cause: Optional[BaseException] = None,
    ) -> None:
        """Spend a batch's last attempt: raise (``fail``) or place sentinels."""
        test, indices = groups[slot]
        if policy.raises:
            if reason == "domain-overflow":
                error: Exception = DomainOverflowError(f"test {test.name!r}: {message}")
            else:
                # In-process failures chain the live exception; the
                # traceback text is only attached when the frames could
                # not cross a process boundary.
                error = EngineWorkerError(
                    test.name, message, "" if cause is not None else worker_tb
                )
            if cause is not None:
                raise error from cause
            raise error
        if policy.on_error == ON_ERROR_QUARANTINE:
            incr("engine.batches.quarantined")
        failure = CellFailure(
            test_name=test.name,
            reason=reason,
            message=message,
            traceback=worker_tb,
            attempts=attempt,
        )
        for index in indices:
            results[index] = failure
        if on_batch is not None:
            on_batch(test, [failure] * len(indices))

    use_pool = (jobs > 1 and len(groups) > 1) or policy.needs_pool
    with time_block("engine.wall.seconds"):
        if not use_pool:
            _evaluate_serial(groups, cells, cache_dir, policy, plan, _accept, _finalize_failure)
        else:
            _evaluate_pooled(
                groups,
                cells,
                cache_dir,
                jobs,
                policy,
                plan,
                recorder,
                on_stall,
                stall_after,
                _accept,
                _finalize_failure,
            )
    return results


def _evaluate_serial(
    groups: list[tuple[LitmusTest, list[int]]],
    cells: Sequence[CellSpec],
    cache_dir: Optional[str],
    policy: ExecutionPolicy,
    plan: FaultPlan,
    accept: Callable,
    finalize_failure: Callable,
) -> None:
    """In-process evaluation: same policy semantics, no pool, no pickling.

    Instrumentation records straight into the parent recorder — the same
    code paths the workers run, which is what makes serial and pooled
    counter totals identical.  Failures keep their original exception
    objects, so ``fail`` mode raises with ``__cause__`` chained.
    """
    for slot, (test, indices) in enumerate(groups):
        batch = [cells[i] for i in indices]
        attempt = 1
        while True:
            try:
                batch_results = _run_batch_guts(
                    slot, attempt, test, batch, cache_dir, plan, False
                )
            except DomainOverflowError as exc:
                # Deterministic: retrying an overflow can only overflow.
                finalize_failure(slot, "domain-overflow", str(exc), "", attempt, exc)
                break
            except Exception as exc:
                if attempt <= policy.retries:
                    incr("engine.retries")
                    attempt += 1
                    _backoff_sleep(policy, attempt)
                    continue
                finalize_failure(
                    slot,
                    "error",
                    f"{type(exc).__name__}: {exc}",
                    traceback.format_exc(),
                    attempt,
                    exc,
                )
                break
            accept(slot, batch_results)
            break


def _evaluate_pooled(
    groups: list[tuple[LitmusTest, list[int]]],
    cells: Sequence[CellSpec],
    cache_dir: Optional[str],
    jobs: int,
    policy: ExecutionPolicy,
    plan: FaultPlan,
    recorder,
    on_stall: Optional[Callable[[LitmusTest, float], None]],
    stall_after: float,
    accept: Callable,
    finalize_failure: Callable,
) -> None:
    """Pooled evaluation: sliding submission window, deadlines, recovery.

    Batches are consumed strictly in submission order (deterministic
    ``on_batch`` stream and telemetry merges).  With a deadline armed the
    in-flight window equals the worker count, so every submitted future
    is genuinely running and elapsed-since-submission is its runtime;
    without one the window is ``2 * workers`` — enough queued work to
    keep workers busy across uneven batch times, while bounding how many
    batches a crashed pool puts under suspicion.

    Recovery events:

    * deadline exceeded — the pool is killed (a hung worker cannot be
      joined), the batch's retry budget is consulted, and innocent
      in-flight batches are re-submitted on a fresh pool with their
      attempt counts untouched;
    * ``BrokenProcessPool`` — any in-flight batch may have killed the
      worker, so the whole window re-runs one batch at a time on fresh
      pools; the batch that breaks a pool it has to itself is the
      culprit and is charged an attempt, the rest are exonerated.
    """
    workers = min(max(jobs, 1), len(groups))
    window_cap = workers if policy.needs_pool else 2 * workers
    total = len(groups)
    attempts = [1] * total
    inflight: dict[int, tuple] = {}
    executor: Optional[ProcessPoolExecutor] = None
    position = 0
    next_submit = 0
    serial_until = 0

    def _submit(slot: int) -> None:
        test, indices = groups[slot]
        payload = (
            slot,
            attempts[slot],
            test,
            [cells[i] for i in indices],
            cache_dir,
            recorder.active,
            plan,
        )
        inflight[slot] = (executor.submit(_run_batch, payload), monotonic())

    def _restart_pool() -> None:
        """Kill the pool and put every in-flight batch back in the queue."""
        nonlocal executor, next_submit
        incr("engine.pool.restarts")
        _kill_executor(executor)
        executor = None
        inflight.clear()
        next_submit = position

    try:
        while position < total:
            if executor is None:
                executor = ProcessPoolExecutor(max_workers=workers)
            window = 1 if position < serial_until else window_cap
            while next_submit < total and len(inflight) < window:
                _submit(next_submit)
                next_submit += 1
            future, submitted = inflight[position]
            test = groups[position][0]
            outcome: Optional[tuple] = None
            event: Optional[str] = None
            stalls_fired = 0
            while True:
                waited = monotonic() - submitted
                step: Optional[float] = None
                if policy.timeout is not None:
                    remaining = policy.timeout - waited
                    if remaining <= 0 and not future.done():
                        event = "timeout"
                        break
                    step = max(remaining, 0.0)
                if on_stall is not None and stall_after > 0:
                    to_stall = stall_after * (stalls_fired + 1) - waited
                    if to_stall <= 0:
                        stalls_fired += 1
                        on_stall(test, waited)
                        continue
                    step = to_stall if step is None else min(step, to_stall)
                try:
                    outcome = future.result(timeout=step)
                    break
                except FutureTimeout:
                    continue
                except BrokenProcessPool:
                    event = "broken"
                    break

            if event == "timeout":
                incr("engine.timeouts")
                _restart_pool()
                if attempts[position] <= policy.retries:
                    incr("engine.retries")
                    attempts[position] += 1
                    _backoff_sleep(policy, attempts[position])
                else:
                    finalize_failure(
                        position,
                        "timeout",
                        f"batch exceeded the {policy.timeout:g}s deadline",
                        "",
                        attempts[position],
                    )
                    position += 1
                    next_submit = position
                continue

            if event == "broken":
                suspects = next_submit - position
                _restart_pool()
                if suspects > 1:
                    # Any of the in-flight batches may be the crasher;
                    # probe them one at a time, no attempts charged yet.
                    serial_until = position + suspects
                elif attempts[position] <= policy.retries:
                    incr("engine.retries")
                    attempts[position] += 1
                    _backoff_sleep(policy, attempts[position])
                else:
                    finalize_failure(
                        position,
                        "crash",
                        "worker process died mid-batch (pool broken)",
                        "",
                        attempts[position],
                    )
                    position += 1
                    next_submit = position
                continue

            del inflight[position]
            tag = outcome[0]
            if tag == "ok":
                if outcome[2] is not None:
                    recorder.merge(outcome[2])
                accept(position, outcome[1])
                position += 1
            elif tag == "domain-overflow":
                finalize_failure(position, "domain-overflow", outcome[2], "", attempts[position])
                position += 1
            else:  # "error"
                _, _test_name, message, worker_tb = outcome
                if attempts[position] <= policy.retries:
                    incr("engine.retries")
                    attempts[position] += 1
                    _backoff_sleep(policy, attempts[position])
                    _submit(position)  # same pool: the worker is healthy
                else:
                    finalize_failure(
                        position, "error", message, worker_tb, attempts[position]
                    )
                    position += 1
    except BaseException:
        if executor is not None:
            _kill_executor(executor)
        raise
    else:
        if executor is not None:
            executor.shutdown(wait=True)
