"""Deterministic fault injection: make every recovery path testable.

A fault-tolerance layer that is only ever exercised by real crashes is
untested code.  This module arms the scheduler with *planned* faults —
raise an exception, hang past a deadline, kill the worker process, or
corrupt a cache entry — targeted at a specific batch, test or attempt,
so chaos tests and the CI chaos-smoke job can script a crash and assert
the exact quarantine record it must produce.

A plan is a ``;``-separated list of actions, each ``kind:key=value,...``
(the same spec idiom as ``gen:edges=4,size=50`` suites):

    raise:test=mp                    raise InjectedFault in mp's batch
    hang:batch=0,seconds=120         sleep 120s in the first batch
    crash:test=sb,attempts=1         SIGKILL the worker on sb's first try
    corrupt:test=mp                  garble mp's first cache entry post-store

Kinds:

* ``raise`` — raise :class:`InjectedFault` before evaluating the batch.
* ``hang`` — sleep ``seconds`` (default 3600) before evaluating; with a
  per-batch deadline armed this reliably trips the timeout path.
* ``crash`` — ``SIGKILL`` the current process when running inside a pool
  worker (surfaces as ``BrokenProcessPool`` in the parent).  In-process
  execution raises :class:`InjectedFault` instead — killing the caller's
  own interpreter would take the test harness down with it.
* ``corrupt`` — after the batch stores its results, overwrite the first
  cell's cache entry with garbage bytes; exercises the cache's
  stale-entry recovery (the next load must count a miss and recompute).

Selectors (all optional; an action with none fires on every batch):

* ``batch=N`` — 0-based batch dispatch index within one
  ``evaluate_cells`` call.
* ``test=NAME`` — the batch's litmus test name.
* ``attempts=A`` — fire on attempts 1..A only, so retries recover
  (``crash:test=sb,attempts=1`` crashes once, then succeeds).
* ``seconds=S`` — hang duration (``hang`` only).

Plans arrive either as the ``fault_plan=`` kwarg to ``evaluate_cells``
and the campaign driver, or via the ``REPRO_FAULTS`` environment
variable (read once per engine call; the env var crosses pool
boundaries for free, which is what lets the CI job arm faults around an
unmodified ``repro hunt`` invocation).  Everything is deterministic:
the same plan against the same cell grid fires the same faults.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = [
    "FAULTS_ENV_VAR",
    "FAULT_KINDS",
    "InjectedFault",
    "FaultAction",
    "FaultPlan",
    "parse_fault_plan",
    "fault_plan_from_env",
]

FAULTS_ENV_VAR = "REPRO_FAULTS"
"""Environment variable holding a fault-plan spec (empty/unset = no faults)."""

FAULT_KINDS: dict[str, str] = {
    "raise": "raise `InjectedFault` before the batch evaluates",
    "hang": (
        "sleep `seconds` (default 3600) before the batch evaluates — "
        "trips the per-batch deadline when one is armed"
    ),
    "crash": (
        "SIGKILL the worker process mid-batch (in-process runs raise "
        "`InjectedFault` instead of killing the caller)"
    ),
    "corrupt": (
        "after the batch stores its results, overwrite the first cell's "
        "cache entry with garbage bytes"
    ),
}
"""The fault vocabulary, rendered into ``docs/robustness.md``."""


class InjectedFault(RuntimeError):
    """The exception a ``raise`` fault (or an in-process ``crash``) throws."""


@dataclass(frozen=True)
class FaultAction:
    """One planned fault: a kind plus the selectors that scope it.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        batch: fire only on this 0-based batch dispatch index (``None``
            = any batch).
        test: fire only on this litmus test's batch (``None`` = any).
        attempts: fire on attempts ``1..attempts`` only (``None`` =
            every attempt — the fault never recovers).
        seconds: sleep duration for ``hang``.
    """

    kind: str
    batch: Optional[int] = None
    test: Optional[str] = None
    attempts: Optional[int] = None
    seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(sorted(FAULT_KINDS))}"
            )
        if self.batch is not None and self.batch < 0:
            raise ValueError(f"batch selector must be >= 0, got {self.batch}")
        if self.attempts is not None and self.attempts < 1:
            raise ValueError(
                f"attempts selector must be >= 1, got {self.attempts}"
            )
        if self.seconds <= 0:
            raise ValueError(f"seconds must be > 0, got {self.seconds}")

    def matches(self, batch_index: int, test_name: str, attempt: int) -> bool:
        """True when this action fires for the given batch attempt."""
        if self.batch is not None and self.batch != batch_index:
            return False
        if self.test is not None and self.test != test_name:
            return False
        if self.attempts is not None and attempt > self.attempts:
            return False
        return True

    def describe(self) -> str:
        """The canonical spec string for this action."""
        parts = []
        if self.batch is not None:
            parts.append(f"batch={self.batch}")
        if self.test is not None:
            parts.append(f"test={self.test}")
        if self.attempts is not None:
            parts.append(f"attempts={self.attempts}")
        if self.kind == "hang" and self.seconds != 3600.0:
            parts.append(f"seconds={self.seconds:g}")
        return self.kind + (":" + ",".join(parts) if parts else "")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, picklable set of :class:`FaultAction` to arm a run with."""

    actions: tuple[FaultAction, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.actions)

    def select(
        self, batch_index: int, test_name: str, attempt: int
    ) -> list[FaultAction]:
        """The actions that fire for this batch attempt, in plan order."""
        return [
            action
            for action in self.actions
            if action.matches(batch_index, test_name, attempt)
        ]

    def describe(self) -> str:
        """The canonical spec string for the whole plan."""
        return ";".join(action.describe() for action in self.actions)


_SELECTOR_KEYS = ("batch", "test", "attempts", "seconds")


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse a ``kind:key=val,...;kind:...`` spec into a :class:`FaultPlan`.

    Raises ``ValueError`` with the offending fragment on any malformed
    piece — a typo'd plan must fail loudly at arm time, not silently
    inject nothing.
    """
    actions: list[FaultAction] = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, _, arg_text = chunk.partition(":")
        kind = kind.strip()
        kwargs: dict = {}
        if arg_text.strip():
            for pair in arg_text.split(","):
                key, sep, value = pair.partition("=")
                key = key.strip()
                value = value.strip()
                if not sep or not key or not value:
                    raise ValueError(
                        f"malformed fault argument {pair!r} in {chunk!r}; "
                        f"expected key=value"
                    )
                if key not in _SELECTOR_KEYS:
                    raise ValueError(
                        f"unknown fault selector {key!r} in {chunk!r}; "
                        f"expected one of {', '.join(_SELECTOR_KEYS)}"
                    )
                if key in kwargs:
                    raise ValueError(
                        f"duplicate fault selector {key!r} in {chunk!r}"
                    )
                if key == "test":
                    kwargs[key] = value
                elif key == "seconds":
                    kwargs[key] = float(value)
                else:
                    kwargs[key] = int(value)
        try:
            actions.append(FaultAction(kind=kind, **kwargs))
        except ValueError as exc:
            raise ValueError(f"bad fault action {chunk!r}: {exc}") from None
    return FaultPlan(actions=tuple(actions))


def fault_plan_from_env() -> FaultPlan:
    """The plan armed via :data:`FAULTS_ENV_VAR` (empty plan when unset)."""
    spec = os.environ.get(FAULTS_ENV_VAR, "")
    if not spec.strip():
        return FaultPlan()
    return parse_fault_plan(spec)


def fire_before_batch(
    plan: FaultPlan,
    batch_index: int,
    test_name: str,
    attempt: int,
    in_worker: bool,
) -> None:
    """Fire the pre-evaluation faults (raise / hang / crash) for a batch.

    ``in_worker`` distinguishes pool workers (where ``crash`` genuinely
    SIGKILLs the process) from in-process execution (where it degrades
    to :class:`InjectedFault` — taking down the caller's interpreter is
    never acceptable collateral).
    """
    for action in plan.select(batch_index, test_name, attempt):
        if action.kind == "hang":
            time.sleep(action.seconds)
        elif action.kind == "raise":
            raise InjectedFault(
                f"injected fault ({action.describe()}) in test {test_name!r} "
                f"batch {batch_index} attempt {attempt}"
            )
        elif action.kind == "crash":
            if in_worker:
                os.kill(os.getpid(), signal.SIGKILL)
            raise InjectedFault(
                f"injected crash ({action.describe()}) in test {test_name!r} "
                f"batch {batch_index} attempt {attempt} "
                f"(in-process: degraded from SIGKILL)"
            )


def fire_after_batch(
    plan: FaultPlan,
    batch_index: int,
    test_name: str,
    attempt: int,
    cells: Sequence,
    cache_dir: Optional[str],
) -> None:
    """Fire the post-store faults (``corrupt``) for a completed batch.

    Overwrites the first cell's cache entry with non-JSON garbage; a
    no-op without a cache directory (there is nothing to corrupt).
    """
    for action in plan.select(batch_index, test_name, attempt):
        if action.kind != "corrupt" or cache_dir is None or not cells:
            continue
        from .cache import ResultCache

        path = ResultCache(cache_dir).entry_path(cells[0])
        path.write_bytes(b"\x00corrupted-by-fault-injection\x00")
