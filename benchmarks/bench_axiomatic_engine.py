"""Performance of the axiomatic checking engine itself.

These are the operations a memory-model user pays for: full outcome
enumeration on small tests, verdicts on the paper's hardest figures (RSW /
RNSW, six-load programs with dependency chains), and a four-processor
test (IRIW).

The default-path benchmarks ride whatever engine dispatch picks (the
frontier kernel for GAM); the ``engine="orders"`` variants pin the exact
order enumerator so the kernel's advantage stays measured run over run.
``tools/run_benches.py`` runs this file twice — once with
``REPRO_ENUM_KERNEL=0`` and once with the default — and records the
before/after medians in ``BENCH_axiomatic.json`` at the repo root.
"""

from __future__ import annotations

import pytest

from repro.core.axiomatic import enumerate_outcomes, is_allowed, value_domains
from repro.litmus.registry import get_test
from repro.models.registry import get_model


@pytest.mark.parametrize("test_name", ["dekker", "mp+addr", "corr"])
def test_enumerate_small(benchmark, test_name):
    test = get_test(test_name)
    gam = get_model("gam")
    outcomes = benchmark(lambda: enumerate_outcomes(test, gam))
    assert outcomes


@pytest.mark.parametrize("test_name", ["rsw", "rnsw"])
def test_verdict_hard_figures(benchmark, test_name):
    test = get_test(test_name)
    gam = get_model("gam")
    allowed = benchmark(lambda: is_allowed(test, gam))
    assert allowed is False


def test_verdict_iriw_four_procs(benchmark):
    test = get_test("iriw")
    gam = get_model("gam")
    allowed = benchmark(lambda: is_allowed(test, gam))
    assert allowed is True


@pytest.mark.parametrize("test_name", ["rsw", "rnsw"])
def test_verdict_hard_figures_orders_engine(benchmark, test_name):
    """The exact order enumerator on the same figures (kernel comparison)."""
    test = get_test(test_name)
    gam = get_model("gam")
    allowed = benchmark(lambda: is_allowed(test, gam, engine="orders"))
    assert allowed is False


def test_outcome_set_iriw(benchmark):
    """Full outcome-set enumeration on the four-processor test."""
    test = get_test("iriw")
    gam = get_model("gam")
    outcomes = benchmark(lambda: enumerate_outcomes(test, gam, project="full"))
    assert outcomes


def test_arm_dynamic_clause_overhead(benchmark):
    """ARM verdicts re-close ppo per candidate execution (dynamic clause)."""
    test = get_test("rsw")
    arm = get_model("arm")
    allowed = benchmark(lambda: is_allowed(test, arm))
    assert allowed is True


def test_value_domain_closure(benchmark):
    test = get_test("rnsw")
    domains = benchmark(lambda: value_domains(test))
    assert domains.everything()
