"""Generated-suite throughput through the batch engine.

The cycle generator (:mod:`repro.litmus.frontend.gen`) turns the fixed
catalogue into an open-ended test space; this benchmark measures how fast
the batch engine chews through it — the number the ROADMAP's "as many
scenarios as you can imagine" north star ultimately depends on.

It times the full default generated suite (``edges<=4``, 50+ tests, 8-model
zoo) at ``--jobs 1`` and ``--jobs N``, asserts the rendered matrices are
byte-identical (fan-out must not change results), and records tests/second
in ``results/BENCH_generated_suite.json`` alongside the engine-parallel
numbers so the perf trajectory of generated workloads is tracked run over
run.
"""

from __future__ import annotations

import json
import multiprocessing
import time

from benchmarks.conftest import write_result
from repro.eval.litmus_matrix import litmus_matrix, render_matrix
from repro.litmus.frontend.gen import generate_suite


def _best_of(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_generated_suite_throughput(results_dir):
    suite = generate_suite(max_edges=4)
    assert len(suite) >= 50

    jobs = max(2, min(4, multiprocessing.cpu_count()))
    serial_time, serial_cells = _best_of(
        lambda: litmus_matrix(tests=suite, jobs=1)
    )
    parallel_time, parallel_cells = _best_of(
        lambda: litmus_matrix(tests=suite, jobs=jobs)
    )

    assert render_matrix(parallel_cells) == render_matrix(serial_cells)

    payload = {
        "workload": f"generated suite (edges<=4, {len(suite)} tests), 8-model zoo",
        "tests": len(suite),
        "jobs": jobs,
        "serial_s": round(serial_time, 4),
        "parallel_s": round(parallel_time, 4),
        "serial_tests_per_s": round(len(suite) / serial_time, 2),
        "parallel_tests_per_s": round(len(suite) / parallel_time, 2),
        "parallel_speedup": round(serial_time / parallel_time, 2),
    }
    write_result(
        results_dir, "BENCH_generated_suite.json", json.dumps(payload, indent=2)
    )
