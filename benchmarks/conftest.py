"""Shared fixtures for the benchmark harness.

The Figure 18 sweep is expensive, so one reduced sweep (a representative
workload subset at a laptop-friendly trace length) is shared by the
figure-18 / table-II / table-III benchmarks.  Rendered tables are written
to ``benchmarks/results/`` so the regenerated artifacts survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.eval.figure18 import run_figure18
from repro.litmus.registry import paper_suite

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SWEEP_WORKLOADS = (
    "astar.lakes",
    "bzip2.source",
    "gcc.166",
    "gobmk.nngs",
    "h264ref.frem",
    "hmmer.retro",
    "lbm",
    "libquantum",
    "mcf",
    "namd",
    "sjeng",
    "sphinx3",
)
SWEEP_LENGTH = 5_000


@pytest.fixture(scope="session")
def figure18_sweep():
    """One reduced Figure 18 sweep shared across benchmark modules."""
    return run_figure18(workloads=SWEEP_WORKLOADS, trace_length=SWEEP_LENGTH)


@pytest.fixture(scope="session")
def paper_tests():
    """The materialized paper suite, shared by the engine benchmarks."""
    return [test for test in paper_suite() if test.asked is not None]


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory that receives the rendered tables/figures."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: pathlib.Path, name: str, content: str) -> None:
    """Persist a rendered experiment artifact."""
    (results_dir / name).write_text(content + "\n")
