"""Cost of the empirical equivalence check (the Section IV validation)."""

from __future__ import annotations

from repro.equivalence.checker import check_pair, fuzz_equivalence
from repro.equivalence.randprog import RandomProgramConfig
from repro.litmus.registry import get_test


def test_equivalence_one_test(benchmark):
    test = get_test("mp+addr")
    report = benchmark(lambda: check_pair(test, "gam"))
    assert report.equivalent


def test_fuzz_batch(benchmark):
    config = RandomProgramConfig(num_procs=2, max_instrs=3)
    reports = benchmark.pedantic(
        lambda: fuzz_equivalence(5, seed=42, config=config, pair_names=("gam",)),
        rounds=1,
        iterations=1,
    )
    assert all(r.equivalent for r in reports)
