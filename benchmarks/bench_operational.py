"""Performance of the Figure 17 abstract-machine exploration.

State-space exploration is the expensive half of the equivalence check;
these benchmarks track its cost on representative tests and record the
explored state counts (via ``extra_info``) so regressions in the
eager-fetch optimization are visible.
"""

from __future__ import annotations

import pytest

from repro.core.operational import GAM0_MACHINE, GAM_MACHINE, explore
from repro.core.reference_machines import sc_outcomes, tso_outcomes
from repro.litmus.registry import get_test


@pytest.mark.parametrize("test_name", ["dekker", "lb", "mp+addr"])
def test_explore_gam_machine(benchmark, test_name):
    test = get_test(test_name)
    result = benchmark(lambda: explore(test, GAM_MACHINE))
    benchmark.extra_info["states"] = result.states_visited
    assert result.outcomes


def test_explore_branchy_program(benchmark):
    test = get_test("mp+ctrl")
    result = benchmark(lambda: explore(test, GAM_MACHINE))
    benchmark.extra_info["states"] = result.states_visited
    assert result.outcomes


def test_explore_gam0_variant(benchmark):
    test = get_test("corr")
    result = benchmark(lambda: explore(test, GAM0_MACHINE))
    assert len(result.outcomes) >= 3


def test_reference_machines(benchmark):
    test = get_test("dekker")
    outcomes = benchmark(lambda: (sc_outcomes(test), tso_outcomes(test)))
    assert len(outcomes[0]) == 3 and len(outcomes[1]) == 4
