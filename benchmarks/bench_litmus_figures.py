"""Benchmark + regenerate the litmus-figure verdicts (Figs. 2, 5, 13, 14).

Each benchmark times the axiomatic verdict for one paper figure under GAM
(the checking workload a model user actually runs) and asserts the paper's
verdict.  The full matrix across the model zoo is rendered once and saved.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.core.axiomatic import is_allowed
from repro.eval.litmus_matrix import (
    conformance_failures,
    litmus_matrix,
    render_matrix,
)
from repro.litmus.registry import get_test, paper_suite
from repro.models.registry import get_model

_FIGURES = [test.name for test in paper_suite()]


@pytest.mark.parametrize("test_name", _FIGURES)
def test_gam_verdict(benchmark, test_name):
    test = get_test(test_name)
    gam = get_model("gam")
    allowed = benchmark(lambda: is_allowed(test, gam))
    assert allowed == test.expect["gam"], f"{test_name}: verdict drifted"


def test_full_matrix_regeneration(benchmark, results_dir):
    cells = benchmark.pedantic(litmus_matrix, rounds=1, iterations=1)
    assert conformance_failures(cells) == []
    rendered = render_matrix(cells)
    write_result(results_dir, "litmus_matrix.txt", rendered)
