"""Benchmark + regenerate Table II (SALdLd kills and stalls per 1K uOPs).

Shape assertions encode the paper's finding that both event classes are
rare (fractions of an event to a few events per 1K uOPs) and that ARM
stalls track GAM stalls (ARM runs the same stall check).
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.eval.table2 import render_table2, table2


def test_table2_shape(benchmark, figure18_sweep, results_dir):
    rows = benchmark(lambda: table2(figure18_sweep))
    rendered = render_table2(rows)
    write_result(results_dir, "table2.txt", rendered)
    by_label = {row.label: row for row in rows}

    kills = by_label["Kills in GAM"]
    assert kills.average_per_1k < 2.0, "kills should be rare (paper: 0.2)"
    assert kills.max_per_1k < 8.0, "paper max is 3.24; same order expected"

    gam_stalls = by_label["Stalls in GAM"]
    arm_stalls = by_label["Stalls in ARM"]
    assert gam_stalls.average_per_1k < 8.0, "stalls should be rare (paper: 0.19)"
    # ARM performs the same stall search as GAM (Section V-A).
    spread = abs(gam_stalls.average_per_1k - arm_stalls.average_per_1k)
    assert spread < max(0.5, 0.3 * gam_stalls.average_per_1k)
