"""Benchmarks for the extension harnesses: fence synthesis + strength lattice.

These regenerate two derived artifacts: the minimal-fence table for the
classic patterns (MP needs SS+LL; Dekker needs SL twice — the canonical
"store-to-load fences are the expensive ones" result), and the measured
model-strength matrix over the paper suite.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.eval.strength import render_strength, strength_matrix
from repro.litmus.registry import get_test, paper_suite
from repro.models.registry import get_model
from repro.synthesis import synthesize_fences


@pytest.mark.parametrize(
    "test_name,expected_kinds",
    [("mp", ["LL", "SS"]), ("dekker", ["SL", "SL"]), ("lb", ["LS", "LS"])],
)
def test_fence_synthesis(benchmark, test_name, expected_kinds):
    test = get_test(test_name)
    gam = get_model("gam")
    result = benchmark.pedantic(
        lambda: synthesize_fences(test, gam), rounds=1, iterations=1
    )
    assert result is not None
    assert sorted(p.kind for p in result.placements) == expected_kinds


def test_strength_lattice(benchmark, results_dir):
    matrix = benchmark.pedantic(
        lambda: strength_matrix(tests=list(paper_suite())),
        rounds=1,
        iterations=1,
    )
    assert matrix.chain_holds(("sc", "tso", "gam", "gam0", "alpha_like"))
    assert matrix.is_stronger_or_equal("gam", "arm")
    write_result(results_dir, "strength_matrix.txt", render_strength(matrix))
