"""Benchmark + regenerate Figure 18 (normalized uPC, four models).

The shared reduced sweep provides the data; the shape assertions encode
the paper's claims: relaxed-model gains over GAM are small on average and
bounded per workload.  The rendered figure is saved to
``benchmarks/results/figure18.txt``.

For the full 55-workload figure run
``python examples/model_comparison_sim.py --full``.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.eval.figure18 import render_figure18, run_figure18
from repro.sim.policies import ALPHA_STAR, GAM
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import get_profile


def test_figure18_shape(benchmark, figure18_sweep, results_dir):
    result = figure18_sweep
    rendered = benchmark(lambda: render_figure18(result))
    write_result(results_dir, "figure18.txt", rendered)
    for model in ("ARM", "GAM0", "Alpha*"):
        average = result.average_normalized(model)
        # Paper: average gain < 0.3%, never above 3%.  Short synthetic
        # traces are noisier, so the envelope here is 2% / 6%.
        assert 0.98 < average < 1.02, f"{model} average {average}"
        assert result.max_normalized(model) < 1.06, model


def test_single_workload_simulation_cost(benchmark):
    """Time one simulator run (the unit of Figure 18's cost)."""
    trace = generate_trace(get_profile("gcc.166"), length=2_000, seed=1)
    from repro.sim.core import OOOCore

    stats = benchmark.pedantic(
        lambda: OOOCore(policy=GAM).run(trace), rounds=3, iterations=1
    )
    assert stats.committed_uops == 2_000


def test_mini_sweep_cost(benchmark):
    """Time a 2-workload, 2-policy sweep end to end."""
    result = benchmark.pedantic(
        lambda: run_figure18(
            workloads=("namd", "libquantum"),
            trace_length=1_500,
            policies=(GAM, ALPHA_STAR),
        ),
        rounds=1,
        iterations=1,
    )
    assert len(result.rows) == 2
