"""Batch evaluation engine vs the seed serial path (full paper matrix).

The seed architecture evaluated every (test, model) verdict independently:
each ``is_allowed`` call re-derived the test's value domains, program runs
and candidate events from scratch, once per model in the zoo.  The engine
(:mod:`repro.engine`) computes that model-independent prefix once per test
and shares static-ppo DAGs and order enumerations between models with
identical clause sets.

This module times three configurations of the full paper-suite matrix —
the faithful seed path, the engine at ``jobs=1``, and the engine on a warm
on-disk cache — asserts the rendered output is byte-identical across all
of them, asserts the tentpole's >= 2x speedup, and writes the wall-times
to ``results/BENCH_engine_parallel.json`` so the perf trajectory of the
matrix workload is tracked run over run.

The seed path is pinned to ``engine="orders"``: the seed predates the
frontier kernel (PR 4), so the historical baseline is per-cell
recomputation *through the exact order enumerator*.  The engine rows ride
whatever the current default engine is, which is exactly the trajectory
this file exists to record.
"""

from __future__ import annotations

import json
import time

import pytest

from benchmarks.conftest import write_result
from repro.core.axiomatic import is_allowed
from repro.eval.litmus_matrix import (
    VerdictCell,
    conformance_failures,
    litmus_matrix,
    render_matrix,
)
from repro.models.registry import get_model

_ZOO = ("sc", "tso", "gam", "gam0", "arm", "wmm", "alpha_like", "plsc")


def _seed_serial_matrix(tests, model_names=_ZOO):
    """The seed's litmus_matrix: one independent is_allowed per cell."""
    cells = []
    models = {name: get_model(name) for name in model_names}
    for test in tests:
        if test.asked is None:
            continue
        for name, model in models.items():
            cells.append(
                VerdictCell(
                    test_name=test.name,
                    model_name=name,
                    allowed=is_allowed(test, model, engine="orders"),
                    expected=test.expect.get(name),
                )
            )
    return cells


def _best_of(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_seed_serial_paper_matrix(benchmark, paper_tests):
    cells = benchmark(lambda: _seed_serial_matrix(paper_tests))
    assert conformance_failures(cells) == []


def test_engine_shared_paper_matrix(benchmark, paper_tests):
    cells = benchmark(lambda: litmus_matrix(tests=paper_tests, jobs=1))
    assert conformance_failures(cells) == []


def test_engine_cached_paper_matrix(benchmark, paper_tests, tmp_path):
    cache = str(tmp_path / "cache")
    litmus_matrix(tests=paper_tests, cache_dir=cache)  # warm the cache
    cells = benchmark(lambda: litmus_matrix(tests=paper_tests, cache_dir=cache))
    assert conformance_failures(cells) == []


def test_engine_speedup_and_parity(paper_tests, results_dir, tmp_path):
    """The tentpole's acceptance: >= 2x over seed, byte-identical output."""
    seed_time, seed_cells = _best_of(lambda: _seed_serial_matrix(paper_tests))
    engine_time, engine_cells = _best_of(
        lambda: litmus_matrix(tests=paper_tests, jobs=1)
    )
    cache = str(tmp_path / "cache")
    litmus_matrix(tests=paper_tests, cache_dir=cache)
    cached_time, cached_cells = _best_of(
        lambda: litmus_matrix(tests=paper_tests, cache_dir=cache)
    )

    assert render_matrix(engine_cells) == render_matrix(seed_cells)
    assert render_matrix(cached_cells) == render_matrix(seed_cells)

    speedup = seed_time / engine_time
    payload = {
        "workload": "paper-suite verdict matrix, 8-model zoo",
        "seed_serial_s": round(seed_time, 4),
        "engine_shared_s": round(engine_time, 4),
        "engine_cached_s": round(cached_time, 4),
        "shared_speedup": round(speedup, 2),
        "cached_speedup": round(seed_time / cached_time, 2),
    }
    write_result(
        results_dir, "BENCH_engine_parallel.json", json.dumps(payload, indent=2)
    )
    assert speedup >= 2.0, f"shared-candidate speedup regressed: {payload}"
