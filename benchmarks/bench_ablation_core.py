"""Ablations over the design choices DESIGN.md calls out.

Two microarchitectural sensitivity studies around the Table I baseline:

* **ROB size** — the window is what lets same-address load pairs coexist
  in flight; shrinking it should shrink SALdLd event rates along with MLP.
* **Kill penalty** — GAM's cost is (kills x penalty); doubling the redirect
  penalty bounds how much the uPC gap to GAM0 can grow.

Both record their measurements as ``extra_info`` so the saved benchmark
JSON doubles as the ablation dataset.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.sim.config import CoreConfig
from repro.sim.core import OOOCore
from repro.sim.policies import GAM, GAM0
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import get_profile

_TRACE = generate_trace(get_profile("gcc.166"), length=4_000, seed=3)


@pytest.mark.parametrize("rob_entries", [48, 96, 192])
def test_ablation_rob_size(benchmark, rob_entries):
    config = replace(CoreConfig.haswell_like(), rob_entries=rob_entries)
    stats = benchmark.pedantic(
        lambda: OOOCore(config=config, policy=GAM).run(_TRACE),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["upc"] = round(stats.upc, 4)
    benchmark.extra_info["kills_per_1k"] = round(stats.kills_per_1k, 3)
    assert stats.committed_uops == len(_TRACE)


@pytest.mark.parametrize("kill_penalty", [5, 10, 20])
def test_ablation_kill_penalty(benchmark, kill_penalty):
    config = replace(CoreConfig.haswell_like(), kill_penalty=kill_penalty)
    gam = OOOCore(config=config, policy=GAM).run(_TRACE)
    gam0 = OOOCore(config=config, policy=GAM0).run(_TRACE)
    gap = gam0.upc / gam.upc if gam.upc else 0.0
    stats = benchmark.pedantic(
        lambda: OOOCore(config=config, policy=GAM).run(_TRACE),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["gam0_over_gam"] = round(gap, 5)
    # Even at double penalty the gap stays within the paper's 3% envelope.
    assert gap < 1.05
    assert stats.committed_uops == len(_TRACE)
