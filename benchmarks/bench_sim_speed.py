"""Raw simulator throughput (uOPs per second of host time).

Tracks the cost of the GEM5 stand-in across workload characters: ILP-bound
(namd), branchy (gcc), streaming (libquantum) and memory-bound pointer
chasing (mcf, slowest per uOP because simulated time per uOP is highest).
"""

from __future__ import annotations

import pytest

from repro.sim.core import OOOCore
from repro.sim.policies import GAM
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import get_profile

_LENGTH = 3_000


@pytest.mark.parametrize("workload", ["namd", "gcc.166", "libquantum", "mcf"])
def test_simulator_throughput(benchmark, workload):
    trace = generate_trace(get_profile(workload), length=_LENGTH, seed=1)
    stats = benchmark.pedantic(
        lambda: OOOCore(policy=GAM).run(trace), rounds=3, iterations=1
    )
    benchmark.extra_info["upc"] = round(stats.upc, 4)
    assert stats.committed_uops == _LENGTH


def test_trace_generation_throughput(benchmark):
    profile = get_profile("gcc.166")
    trace = benchmark(lambda: generate_trace(profile, length=10_000, seed=2))
    assert len(trace) == 10_000
