"""Benchmark + regenerate Table III (load-load forwarding in Alpha*).

Shape assertions encode the paper's punchline: forwardings are *frequent*
(tens per 1K uOPs) yet reduce L1 load misses by approximately nothing, so
the Alpha relaxation buys no performance.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.eval.table3 import render_table3, table3


def test_table3_shape(benchmark, figure18_sweep, results_dir):
    rows = benchmark(lambda: table3(figure18_sweep))
    rendered = render_table3(rows)
    write_result(results_dir, "table3.txt", rendered)

    forwardings, miss_reduction = rows
    assert forwardings.label == "Load-load forwardings"
    assert forwardings.average_per_1k > 3.0, "forwarding should be frequent (paper: 22)"
    assert forwardings.max_per_1k > 10.0

    assert miss_reduction.label == "Reduced L1 load misses over GAM"
    assert abs(miss_reduction.average_per_1k) < 1.0, (
        "forwarded loads would have hit the L1 anyway (paper: 0.01)"
    )
