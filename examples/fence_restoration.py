#!/usr/bin/env python3
"""Restoring SC under GAM: fences versus artificial dependencies.

Walks the paper's two ordering mechanisms (Section III-D):

1. message passing is broken under GAM without fences;
2. FenceSS + FenceLL restore the intended behaviour;
3. an *artificial* address dependency (``a + r1 - r1``, Figure 13b) is a
   cheaper substitute for the reader-side FenceLL;
4. a *control* dependency is NOT enough — BrSt orders stores, not loads.

Run:  python examples/fence_restoration.py
"""

from repro import LitmusBuilder, get_model, is_allowed


def check(test, label: str) -> None:
    gam = get_model("gam")
    verdict = "ALLOWED " if is_allowed(test, gam) else "FORBIDDEN"
    print(f"  stale read {verdict}  -- {label}")


def main() -> None:
    print("Message passing under GAM (asked: r1 = 1 and stale r2 = 0):\n")

    # 1. No ordering at all: the stale read is allowed.
    b = LitmusBuilder("mp-none", locations=("a", "b"))
    b.proc().st("a", 1).st("b", 1)
    b.proc().ld("r1", "b").ld("r2", "a")
    check(b.build(asked={"P1.r1": 1, "P1.r2": 0}), "no fences, no dependency")

    # 2. Writer FenceSS only: still allowed (the reader reorders its loads).
    b = LitmusBuilder("mp-ss", locations=("a", "b"))
    b.proc().st("a", 1).fence("SS").st("b", 1)
    b.proc().ld("r1", "b").ld("r2", "a")
    check(b.build(asked={"P1.r1": 1, "P1.r2": 0}), "writer FenceSS only")

    # 3. Writer FenceSS + reader FenceLL: forbidden.
    b = LitmusBuilder("mp-ss-ll", locations=("a", "b"))
    b.proc().st("a", 1).fence("SS").st("b", 1)
    b.proc().ld("r1", "b").fence("LL").ld("r2", "a")
    check(b.build(asked={"P1.r1": 1, "P1.r2": 0}), "FenceSS + FenceLL")

    # 4. Artificial dependency instead of FenceLL (Figure 13b): forbidden,
    #    and instructions after the dependent load are not fenced at all.
    b = LitmusBuilder("mp-artificial", locations=("a", "b"))
    b.proc().st("a", 1).fence("SS").st("b", 1)
    b.proc().ld("r1", "b").op("r2", b.loc("a") + "r1" - "r1").ld("r3", "r2")
    check(
        b.build(asked={"P1.r1": 1, "P1.r3": 0}),
        "FenceSS + artificial address dependency",
    )

    # 5. Control dependency: NOT enough for load-load ordering (BrSt only
    #    orders stores after branches).
    b = LitmusBuilder("mp-ctrl", locations=("a", "b"))
    b.proc().st("a", 1).fence("SS").st("b", 1)
    p1 = b.proc()
    p1.ld("r1", "b")
    p1.branch(("r1", "==", 0), "end")
    p1.ld("r2", "a")
    p1.label("end")
    check(b.build(asked={"P1.r1": 1, "P1.r2": 0}), "control dependency (no good!)")

    print()
    print("Dekker needs the FenceSL component (store-to-load ordering):\n")
    for fences, label in ((("SS",), "FenceSS"), (("full",), "full fence")):
        b = LitmusBuilder("dekker-fenced", locations=("a", "b"))
        p0 = b.proc().st("a", 1)
        for fence in fences:
            p0.fence(fence)
        p0.ld("r1", "b")
        p1 = b.proc().st("b", 1)
        for fence in fences:
            p1.fence(fence)
        p1.ld("r2", "a")
        check(b.build(asked={"P0.r1": 0, "P1.r2": 0}), label)


if __name__ == "__main__":
    main()
