#!/usr/bin/env python3
"""Watch the SALdLd mechanisms fire inside the out-of-order core.

Constructs a tiny adversarial uOP sequence by hand — an older same-address
load whose address arrives late (behind a divide chain) and a younger load
to the same address that is ready immediately — then runs it under all
four policies and reports what each machine did: GAM kills, ARM stalls,
GAM0 lets the reorder stand, Alpha* forwards load-to-load.

Run:  python examples/pipeline_trace.py
"""

from repro.sim import ALL_POLICIES, OOOCore, Trace, Uop, UopKind


def adversarial_trace() -> Trace:
    """The same-address load-load hazard, distilled to nine uOPs."""
    uops = [
        Uop(UopKind.INT_DIV, dst=0),                      # long latency ...
        Uop(UopKind.INT_DIV, dst=0, srcs=(0,)),           # ... chain feeding
        Uop(UopKind.LOAD, dst=1, srcs=(0,), addr=0x200),  # older load, late address
        Uop(UopKind.LOAD, dst=2, addr=0x200),             # younger load, ready now
        Uop(UopKind.INT_ALU, dst=3, srcs=(2,)),           # consumer of the younger
    ]
    uops.extend(Uop(UopKind.INT_ALU, dst=4) for _ in range(4))
    return Trace(name="saldld-hazard", uops=uops)


def plain_reuse_trace() -> Trace:
    """Benign same-address reuse: both loads ready at once."""
    uops = [
        Uop(UopKind.LOAD, dst=1, addr=0x300),
        Uop(UopKind.LOAD, dst=2, addr=0x300),
    ]
    uops.extend(Uop(UopKind.INT_ALU, dst=3) for _ in range(4))
    return Trace(name="benign-reuse", uops=uops)


def report(trace: Trace) -> None:
    print(f"trace {trace.name!r} ({len(trace)} uOPs):")
    print(f"  {'policy':8s} {'cycles':>6s} {'kills':>6s} {'stalls':>7s} "
          f"{'ldld fwd':>9s} {'SB fwd':>7s}")
    for policy in ALL_POLICIES:
        stats = OOOCore(policy=policy).run(trace)
        print(
            f"  {policy.name:8s} {stats.cycles:6d} {stats.saldld_kills:6d} "
            f"{stats.saldld_stalls:7d} {stats.ldld_forwards:9d} "
            f"{stats.sb_forwards:7d}"
        )
    print()


def main() -> None:
    report(adversarial_trace())
    report(plain_reuse_trace())
    print(
        "Reading the first table: GAM squashes the younger load when the\n"
        "older one's address finally resolves (a kill); ARM relies on its\n"
        "weaker rf-based rule and never kills; GAM0 simply allows the\n"
        "reorder; Alpha* instead *forwards* the older load's data once it\n"
        "is available.  The second table shows benign reuse: nobody pays\n"
        "anything, matching the paper's claim that SALdLd events are rare."
    )


if __name__ == "__main__":
    main()
