#!/usr/bin/env python3
"""The full verdict matrix for every litmus figure in the paper.

Regenerates, as a table, the allow/forbid claims of Figures 2, 5, 8, 9,
13a-d and 14a-d across the whole model zoo, flagging any disagreement with
the paper (there are none), then prints the classic-suite matrix as a
bonus.

Run:  python examples/litmus_gallery.py
"""

from repro.eval.litmus_matrix import (
    conformance_failures,
    litmus_matrix,
    render_matrix,
)
from repro.litmus.registry import standard_suite


def main() -> None:
    cells = litmus_matrix()
    print(render_matrix(cells))
    failures = conformance_failures(cells)
    print()
    if failures:
        print(f"!! {len(failures)} verdicts disagree with the paper:")
        for cell in failures:
            print(f"   {cell.test_name} / {cell.model_name}")
    else:
        print("All verdicts match the paper.")

    print()
    print("Classic suite (not from the paper's figures):")
    print()
    standard_cells = litmus_matrix(tests=standard_suite())
    print(render_matrix(standard_cells))
    assert not conformance_failures(standard_cells)


if __name__ == "__main__":
    main()
