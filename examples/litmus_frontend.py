#!/usr/bin/env python3
"""Litmus frontend tour: parse ``.litmus`` text, generate tests, run them.

Shows the three faces of the frontend subsystem:

1. parse a herd-style ``.litmus`` file into a :class:`LitmusTest` and
   check it (no Python DSL needed);
2. print any catalogue test back out as ``.litmus`` interchange text;
3. generate a systematic suite from critical cycles and push it through
   the batch evaluation engine.

Run:  python examples/litmus_frontend.py
"""

from repro import get_model, is_allowed
from repro.eval.litmus_matrix import litmus_matrix, render_matrix
from repro.litmus import generate_suite, get_test, parse_litmus, print_litmus

MP_LITMUS = """\
GAM my-mp
"Message passing, written as plain .litmus text."
{ a; b; }
 P0       | P1          ;
 St [a] 1 | r1 = Ld [b] ;
 St [b] 1 | r2 = Ld [a] ;
exists (1:r1=1 /\\ 1:r2=0)
"""


def main() -> None:
    # --- 1. Parse .litmus text and check it ------------------------------
    test = parse_litmus(MP_LITMUS)
    for model_name in ("sc", "tso", "gam"):
        verdict = "ALLOWS" if is_allowed(test, get_model(model_name)) else "FORBIDS"
        print(f"  {model_name:4s} {verdict}  {test.asked}")
    print()

    # --- 2. Print a catalogue test as interchange text -------------------
    print(print_litmus(get_test("corr")))

    # --- 3. Generate a cycle suite and run it through the engine ---------
    suite = generate_suite(max_edges=4, size=6, seed=42)
    print(f"generated {len(suite)} tests: {', '.join(t.name for t in suite)}")
    cells = litmus_matrix(tests=suite, jobs=1)
    print(render_matrix(cells, title="Generated-suite verdict matrix"))


if __name__ == "__main__":
    main()
