#!/usr/bin/env python3
"""Re-run the paper's construction procedure with your own choices.

Section III derives GAM by accumulating constraints; this example drives
the same factory (:func:`repro.assemble`) through different decision
points and finds litmus tests that witness each difference:

* drop dependency ordering       -> out-of-thin-air values appear (Fig. 5);
* allow speculative stores       -> load-buffering with control deps breaks;
* pick ARM's SALdLdARM           -> RSW/RNSW asymmetry (Figs. 14c/14d);
* pick SALdLd                    -> GAM, per-location SC restored.

It then does the same *declaratively*: models are data, so the
drop-AddrSt experiment lives in ``examples/no_addrst.model`` (a choice
``assemble`` deliberately does not expose) and resolves through the one
universal entry point, :func:`repro.models.resolve_model` — exactly the
spec strings every CLI ``--model`` argument accepts.

Run:  python examples/custom_model.py
"""

import os

from repro import assemble, derivation_chain, get_test, is_allowed
from repro.core.construction import CONSTRAINTS
from repro.models import resolve_model, resolve_models


def verdict(model, test_name: str) -> str:
    test = get_test(test_name)
    return "allows " if is_allowed(test, model) else "forbids"


def main() -> None:
    print("The construction procedure (Section III):\n")
    for stage, model in derivation_chain():
        clauses = ", ".join(model.clause_names())
        print(f"  {model.name:5s} <- {stage}")
        print(f"        clauses: {clauses}")
    print()

    print("Constraint provenance (why each exists):\n")
    for name in ("RegRAW", "BrSt", "AddrSt", "SALdLd"):
        info = CONSTRAINTS[name]
        print(f"  {name:8s} [{info.stage}] {info.origin}")
    print()

    print("Now make different choices and see what breaks:\n")

    no_deps = assemble("no-deps", dependency_ordering=False)
    print(f"  without dependency ordering, the model {verdict(no_deps, 'oota')} "
          "OOTA (Figure 5)  <- Alpha's problem")

    spec_stores = assemble("spec-stores", speculative_stores=True)
    print(f"  with speculative stores, the model {verdict(spec_stores, 'lb+ctrls')} "
          "LB+ctrls  <- why BrSt exists")

    arm = assemble("arm-like", same_address_loads="arm")
    print(f"  with SALdLdARM, the model {verdict(arm, 'rsw')} RSW "
          f"but {verdict(arm, 'rnsw')} RNSW  <- the confusing asymmetry")

    gam = assemble("gam-like", same_address_loads="saldld")
    print(f"  with SALdLd, the model {verdict(gam, 'rsw')} RSW "
          f"and {verdict(gam, 'rnsw')} RNSW  <- GAM's uniform answer")
    print(f"  ... and {verdict(gam, 'corr')} CoRR, restoring per-location SC.")
    print()

    print("Models are data: the same experiments as declarative specs:\n")

    # A spec string per experiment — registry names, inline construction
    # points and .model files all resolve through resolve_model, exactly
    # like the CLI's -m/--model arguments.
    here = os.path.dirname(os.path.abspath(__file__))
    no_addrst_file = os.path.join(here, "no_addrst.model")
    print(f"  {os.path.relpath(no_addrst_file)} drops AddrSt — a choice "
          "assemble() does not even expose:")
    no_addrst = resolve_model(no_addrst_file)
    print(f"    clauses: {', '.join(no_addrst.clause_names())}")
    print(f"    the file model {verdict(no_addrst, 'lb+addrpo-st')} "
          f"lb+addrpo-st, while {verdict(resolve_model('gam'), 'lb+addrpo-st')}"
          " under gam  <- why AddrSt exists")
    print()

    print("  ctor: specs are inline construction points:")
    arm_like = resolve_model("ctor:same_address_loads=arm")
    print(f"    {arm_like.name} {verdict(arm_like, 'rsw')} RSW "
          f"(same model as the assemble() call above)")
    print()

    print("  space: specs enumerate a family — the paper's methodology "
          "(repro hunt --pair \"space:same_address_loads=*:gam\"):")
    for member in resolve_models("space:same_address_loads=*"):
        print(f"    {member.name:35s} {verdict(member, 'corr')} CoRR")


if __name__ == "__main__":
    main()
