#!/usr/bin/env python3
"""Quickstart: check a litmus test under GAM, both definitions.

Builds the paper's Dekker test (Figure 2), asks whether the non-SC outcome
``r1 = r2 = 0`` is allowed under several memory models using the axiomatic
engine, and cross-checks GAM's verdict against the Figure 17 abstract
machine.

Run:  python examples/quickstart.py
"""

from repro import (
    GAM_MACHINE,
    LitmusBuilder,
    get_model,
    is_allowed,
    operational_allows,
)


def main() -> None:
    # --- 1. Write the litmus test (Figure 2) -----------------------------
    b = LitmusBuilder("my-dekker", locations=("a", "b"))
    b.proc().st("a", 1).ld("r1", "b")   # P0:  St [a] 1 ; r1 = Ld [b]
    b.proc().st("b", 1).ld("r2", "a")   # P1:  St [b] 1 ; r2 = Ld [a]
    test = b.build(asked={"P0.r1": 0, "P1.r2": 0})
    print(test)
    print()

    # --- 2. Ask the axiomatic definitions --------------------------------
    for model_name in ("sc", "tso", "gam", "gam0", "arm"):
        model = get_model(model_name)
        verdict = "ALLOWS" if is_allowed(test, model) else "FORBIDS"
        print(f"  {model_name:6s} {verdict}  r1=0, r2=0")
    print()

    # --- 3. Cross-check with the operational definition ------------------
    machine_says = operational_allows(test, GAM_MACHINE)
    axioms_say = is_allowed(test, get_model("gam"))
    print(f"GAM abstract machine allows the outcome: {machine_says}")
    print(f"GAM axioms allow the outcome:            {axioms_say}")
    assert machine_says == axioms_say, "the two definitions must agree!"
    print("The operational and axiomatic definitions agree, as Section IV promises.")


if __name__ == "__main__":
    main()
