#!/usr/bin/env python3
"""Section V in miniature: simulate the four models on a workload subset.

Runs the out-of-order core under GAM / ARM / GAM0 / Alpha* on a handful of
SPEC-stand-in workloads and prints the normalized-uPC table (Figure 18's
shape), Table II (kills/stalls) and Table III (load-load forwarding).

Run:  python examples/model_comparison_sim.py  [--full]

``--full`` sweeps all 55 workloads (several minutes); the default subset
finishes in under a minute.
"""

import sys

from repro.eval.figure18 import render_figure18, run_figure18
from repro.eval.table2 import render_table2, table2
from repro.eval.table3 import render_table3, table3
from repro.workloads.profiles import profile_names

SUBSET = (
    "mcf",
    "gcc.166",
    "gobmk.nngs",
    "hmmer.retro",
    "h264ref.frem",
    "libquantum",
    "namd",
    "bwaves",
)


def main() -> None:
    full = "--full" in sys.argv
    workloads = profile_names() if full else SUBSET
    length = 12_000 if full else 6_000
    print(
        f"Simulating {len(workloads)} workloads x 4 models "
        f"({length} uOPs each)...\n"
    )
    result = run_figure18(workloads=workloads, trace_length=length)
    print(render_figure18(result))
    print()
    print(render_table2(table2(result)))
    print()
    print(render_table3(table3(result)))
    print()
    print(
        "Shape check vs the paper: the relaxed models' average gain over GAM\n"
        "should be well under 1%, kills/stalls rare, and load-load forwarding\n"
        "frequent yet useless (no L1-miss reduction)."
    )


if __name__ == "__main__":
    main()
