"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable wheels cannot be built; with this shim (and no
``[build-system]`` table in pyproject.toml) ``pip install -e .`` takes the
legacy ``setup.py develop`` path, which works offline.
"""

from setuptools import setup

setup()
