#!/usr/bin/env python
"""Run the engine benchmarks and record the perf baseline.

Runs ``benchmarks/bench_axiomatic_engine.py`` twice — once with
``REPRO_ENUM_KERNEL=0`` (the exact order enumerator, the "before" of the
frontier-kernel tentpole) and once on the default dispatch (the kernel
fast path, "after") — plus the engine-parallel matrix benchmark, and
writes per-benchmark medians and before/after speedups to
``BENCH_axiomatic.json`` at the repository root.  Future PRs diff against
this file to see whether they moved the hot path.

Each run also *appends* a timestamped entry to ``BENCH_history.json``
next to the output file, so the baseline keeps a trail of past runs
instead of silently overwriting itself (a corrupt or missing history
file restarts the trail rather than failing the run).

Usage::

    python tools/run_benches.py                 # full run (~1 min)
    python tools/run_benches.py --skip-parallel # axiomatic benches only
    python tools/run_benches.py -o other.json   # alternate output path
    python tools/run_benches.py --no-history    # skip the history append

Requires ``pytest-benchmark`` (already a benchmarks/ dependency).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parent.parent
AXIOMATIC_BENCH = "benchmarks/bench_axiomatic_engine.py"
PARALLEL_BENCH = "benchmarks/bench_engine_parallel.py"
DEFAULT_OUT = ROOT / "BENCH_axiomatic.json"
HISTORY_NAME = "BENCH_history.json"


def append_history(
    history_path: pathlib.Path, payload: dict, timestamp: str
) -> list:
    """Append a timestamped history entry; return the full history list.

    The history file is a JSON array of ``{"timestamp", "speedup",
    "engine_parallel"}`` entries — the comparable medians, not the whole
    payload, so the file stays reviewable.  A missing, corrupt, or
    non-list history restarts the trail (benchmark runs must never fail
    on a bad history file).
    """
    entries: list = []
    try:
        existing = json.loads(history_path.read_text())
        if isinstance(existing, list):
            entries = existing
    except (OSError, ValueError):
        pass
    entry = {"timestamp": timestamp, "speedup": payload.get("speedup", {})}
    if "engine_parallel" in payload:
        entry["engine_parallel"] = payload["engine_parallel"]
    entries.append(entry)
    history_path.write_text(json.dumps(entries, indent=2, sort_keys=True) + "\n")
    return entries


def _run_bench(bench: str, json_path: pathlib.Path, extra_env: dict) -> None:
    env = dict(os.environ)
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    env.update(extra_env)
    command = [
        sys.executable,
        "-m",
        "pytest",
        bench,
        "-q",
        "-p",
        "no:cacheprovider",
        f"--benchmark-json={json_path}",
    ]
    result = subprocess.run(
        command, cwd=ROOT, env=env, capture_output=True, text=True
    )
    if result.returncode != 0:
        sys.stderr.write(result.stdout)
        sys.stderr.write(result.stderr)
        raise SystemExit(f"benchmark run failed: {' '.join(command)}")


def _medians(json_path: pathlib.Path) -> dict[str, float]:
    data = json.loads(json_path.read_text())
    return {
        bench["name"]: round(bench["stats"]["median"], 6)
        for bench in data["benchmarks"]
    }


def collect(skip_parallel: bool = False) -> dict:
    """Run the benchmark matrix and assemble the baseline payload."""
    payload: dict = {
        "bench": AXIOMATIC_BENCH,
        "unit": "seconds (median per call)",
        "before_env": {"REPRO_ENUM_KERNEL": "0"},
    }
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = pathlib.Path(tmp)
        before_json = tmp_path / "before.json"
        after_json = tmp_path / "after.json"
        _run_bench(AXIOMATIC_BENCH, before_json, {"REPRO_ENUM_KERNEL": "0"})
        _run_bench(AXIOMATIC_BENCH, after_json, {})
        before = _medians(before_json)
        after = _medians(after_json)
        payload["before"] = before
        payload["after"] = after
        payload["speedup"] = {
            name: round(before[name] / after[name], 2)
            for name in sorted(before)
            if name in after and after[name] > 0
        }
        if not skip_parallel:
            parallel_json = tmp_path / "parallel.json"
            _run_bench(PARALLEL_BENCH, parallel_json, {})
            payload["engine_parallel"] = _medians(parallel_json)
            matrix_json = ROOT / "benchmarks/results/BENCH_engine_parallel.json"
            if matrix_json.exists():
                payload["engine_parallel_matrix"] = json.loads(
                    matrix_json.read_text()
                )
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUT,
        help=f"output path (default: {DEFAULT_OUT.name} at the repo root)",
    )
    parser.add_argument(
        "--skip-parallel",
        action="store_true",
        help="skip the engine-parallel matrix benchmark",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help=f"do not append this run to {HISTORY_NAME}",
    )
    args = parser.parse_args(argv)
    payload = collect(skip_parallel=args.skip_parallel)
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    hard = [name for name in payload["speedup"] if "hard_figures[" in name or "iriw" in name]
    for name in sorted(hard):
        print(f"{name}: {payload['speedup'][name]}x")
    print(f"wrote {args.output}")
    if not args.no_history:
        import datetime

        timestamp = datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        )
        history_path = args.output.parent / HISTORY_NAME
        entries = append_history(history_path, payload, timestamp)
        print(f"appended run {len(entries)} to {history_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
