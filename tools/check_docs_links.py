#!/usr/bin/env python
"""Check that every relative markdown link in the repo's docs resolves.

Scans ``docs/*.md`` plus the top-level narrative files (``README.md``,
``ROADMAP.md``, ``CHANGES.md``) for ``[text](target)`` links and fails if
a relative target does not exist on disk.  External links
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``) are
skipped — this is a filesystem consistency check, not a crawler — and a
``path#anchor`` target is checked for the path part only.

Run from anywhere::

    python tools/check_docs_links.py

Exit status 0 when every link resolves, 1 otherwise (one line per broken
link).  Used by the CI docs job and ``tests/test_docs.py``.
"""

from __future__ import annotations

import glob
import os
import re
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_SKIP_SCHEMES = ("http://", "https://", "mailto:")


def _documents() -> list[str]:
    """The markdown files the check covers (repo-root relative)."""
    files = sorted(glob.glob(os.path.join(_ROOT, "docs", "*.md")))
    for name in ("README.md", "ROADMAP.md", "CHANGES.md"):
        path = os.path.join(_ROOT, name)
        if os.path.exists(path):
            files.append(path)
    return files


def broken_links(paths=None) -> list[tuple[str, str]]:
    """All unresolvable relative links as ``(markdown file, target)``."""
    broken: list[tuple[str, str]] = []
    for doc in paths if paths is not None else _documents():
        with open(doc, encoding="utf-8") as handle:
            text = handle.read()
        base = os.path.dirname(doc)
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            if not os.path.exists(os.path.join(base, target_path)):
                broken.append((os.path.relpath(doc, _ROOT), target))
    return broken


def main() -> int:
    """Report broken links; exit non-zero if any."""
    broken = broken_links()
    for doc, target in broken:
        print(f"broken link in {doc}: {target}", file=sys.stderr)
    if broken:
        return 1
    print(f"all relative links resolve across {len(_documents())} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
