#!/usr/bin/env python
"""Run the repo-invariant (``R###``) lint checks over the source tree.

The pure AST analyzers live in :mod:`repro.lint.repo`; this wrapper adds
the filesystem walk, the ``git diff`` glue for the ``R004``
engine-version-bump check, and report rendering/exit policy.  CI runs it
over ``src/`` on every push; run it locally before sending an
engine-touching change.

Usage::

    PYTHONPATH=src python tools/lint_repro.py                 # lint src/
    PYTHONPATH=src python tools/lint_repro.py src/repro/engine
    PYTHONPATH=src python tools/lint_repro.py --diff-base origin/main
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.lint.diagnostics import LintReport  # noqa: E402
from repro.lint.repo import (  # noqa: E402
    ENGINE_VERSION_FILE,
    check_engine_version_bump,
    lint_tree,
)

_VERSION_RE = re.compile(r"^ENGINE_VERSION\s*=\s*(\S+)", re.MULTILINE)


def _git(*args: str) -> str:
    """Run one git command at the repo root, returning stdout."""
    result = subprocess.run(
        ["git", *args],
        cwd=_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return result.stdout


def _changed_paths(base: str) -> list[str]:
    """Repo-relative paths changed between ``base`` and the worktree."""
    output = _git("diff", "--name-only", base, "--")
    return [line.strip() for line in output.splitlines() if line.strip()]


def _version_bumped(base: str) -> bool:
    """Does ``ENGINE_VERSION`` differ between ``base`` and the worktree?

    A missing base-side file (the engine predates the file moving, or the
    ref lacks it) counts as bumped: there is no stale cache to protect.
    """
    try:
        old_text = _git("show", f"{base}:{ENGINE_VERSION_FILE}")
    except subprocess.CalledProcessError:
        return True
    with open(
        os.path.join(_ROOT, ENGINE_VERSION_FILE), encoding="utf-8"
    ) as handle:
        new_text = handle.read()
    old = _VERSION_RE.search(old_text)
    new = _VERSION_RE.search(new_text)
    if old is None or new is None:
        return True
    return old.group(1) != new.group(1)


def main(argv=None) -> int:
    """Lint the given paths (default ``src``); exit 1 on error findings."""
    parser = argparse.ArgumentParser(
        description="repo-invariant (R###) lint checks"
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="repo-relative files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--diff-base",
        default=None,
        metavar="REF",
        help="also run the R004 engine-version-bump check against "
        "`git diff REF`",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    args = parser.parse_args(argv)

    findings = []
    for path in args.paths:
        try:
            findings.extend(lint_tree(_ROOT, path))
        except SyntaxError as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
    if args.diff_base is not None:
        try:
            changed = _changed_paths(args.diff_base)
            bumped = _version_bumped(args.diff_base)
        except subprocess.CalledProcessError as exc:
            print(
                f"error: git failed for --diff-base {args.diff_base!r}: "
                f"{exc.stderr.strip() if exc.stderr else exc}",
                file=sys.stderr,
            )
            return 2
        findings.extend(check_engine_version_bump(changed, bumped))

    report = LintReport(findings=tuple(findings))
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return report.exit_status()


if __name__ == "__main__":
    sys.exit(main())
